package engine

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Result is a materialized retrieved set.
type Result struct {
	Schema Schema
	Rows   [][]int64
}

// Bytes returns the stored size of the retrieved set: rows × row width.
// The empty set still occupies one row width (the paper's cache entries are
// never zero-sized).
func (r *Result) Bytes() int64 {
	w := int64(r.Schema.RowWidth())
	if len(r.Rows) == 0 {
		return w
	}
	return int64(len(r.Rows)) * w
}

// Execute runs the plan to completion, streaming the page references of
// every scan into sink, and returns the materialized result. Pass a
// *storage.CountingSink to measure cost, or a *storage.PoolSink to drive a
// buffer pool.
func (e *Engine) Execute(n Node, sink storage.PageSink) (*Result, error) {
	switch t := n.(type) {
	case *Scan:
		return e.execScan(t, sink)
	case *Join:
		return e.execJoin(t, sink)
	case *Aggregate:
		return e.execAggregate(t, sink)
	case *Project:
		return e.execProject(t, sink)
	case *Sort:
		return e.execSort(t, sink)
	default:
		return nil, fmt.Errorf("engine: execute: unknown node type %T", n)
	}
}

// ExecuteCount runs the plan and returns the result together with its cost
// in logical block reads.
func (e *Engine) ExecuteCount(n Node) (*Result, int64, error) {
	var c storage.CountingSink
	res, err := e.Execute(n, &c)
	return res, c.N, err
}

// Pager returns the engine's pager, creating it on first use.
func (e *Engine) Pager() *storage.Pager {
	if e.pager == nil {
		e.pager = storage.NewPager(e.db)
	}
	return e.pager
}

func (e *Engine) execScan(s *Scan, sink storage.PageSink) (*Result, error) {
	rel, err := e.db.Relation(s.Rel)
	if err != nil {
		return nil, err
	}
	schema, err := s.Schema(e.db)
	if err != nil {
		return nil, err
	}
	pager := e.Pager()

	// Resolve projected and predicate columns to relation positions.
	outCols := make([]int, len(schema))
	for i := range schema {
		outCols[i] = rel.MustColumnIndex(schema[i].Name)
	}
	predCols := make([]int, len(s.Preds))
	for i := range s.Preds {
		ci, err := rel.ColumnIndex(s.Preds[i].Col)
		if err != nil {
			return nil, err
		}
		predCols[i] = ci
	}

	// Decide the iteration strategy.
	lo, hi := int64(0), rel.Rows-1
	ip, indexed := indexUsable(s)
	clustered := false
	if indexed {
		ci := rel.MustColumnIndex(s.Index)
		if rel.Columns[ci].Kind == relation.KindSequential {
			clustered = true
			// Only the matching key range needs to be visited.
			switch ip.Op {
			case OpEQ:
				lo, hi = ip.Lo, ip.Lo
			default:
				lo, hi = ip.Lo, ip.Hi
			}
			if lo < 0 {
				lo = 0
			}
			if hi > rel.Rows-1 {
				hi = rel.Rows - 1
			}
			if hi < lo { // empty range; emit nothing
				return &Result{Schema: schema}, nil
			}
		}
	}

	res := &Result{Schema: schema}
	var matchPages []int64 // pages holding index-predicate matches (unclustered)
	indexCol := -1
	if indexed && !clustered {
		indexCol = rel.MustColumnIndex(s.Index)
	}

rows:
	for row := lo; row <= hi; row++ {
		// For unclustered index scans, the access path selects rows by the
		// index predicate; residual predicates are applied after the fetch
		// but the page is still touched.
		if indexCol >= 0 {
			if !ip.matches(rel.Value(row, indexCol)) {
				continue
			}
			matchPages = append(matchPages, pager.PageOfRow(rel, row))
		}
		for i := range s.Preds {
			if indexCol >= 0 && predCols[i] == indexCol {
				continue // already tested via the access path
			}
			if !s.Preds[i].matches(rel.Value(row, predCols[i])) {
				continue rows
			}
		}
		out := make([]int64, len(outCols))
		for i, ci := range outCols {
			out[i] = rel.Value(row, ci)
		}
		res.Rows = append(res.Rows, out)
	}

	// Emit the access pattern.
	switch {
	case !indexed:
		pager.EmitAll(s.Rel, sink)
	case clustered:
		pager.EmitRange(s.Rel, pager.PageOfRow(rel, lo), pager.PageOfRow(rel, hi), sink)
	default:
		pager.EmitSet(s.Rel, matchPages, sink)
	}
	return res, nil
}

// rowKey encodes selected columns of a row into a map key.
func rowKey(row []int64, cols []int, buf []byte) ([]byte, string) {
	buf = buf[:0]
	for _, c := range cols {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(row[c]))
	}
	return buf, string(buf)
}

func (e *Engine) execJoin(j *Join, sink storage.PageSink) (*Result, error) {
	left, err := e.Execute(j.Left, sink)
	if err != nil {
		return nil, err
	}
	right, err := e.Execute(j.Right, sink)
	if err != nil {
		return nil, err
	}
	li := left.Schema.Index(j.LeftCol)
	ri := right.Schema.Index(j.RightCol)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("engine: join: column %q/%q not in inputs", j.LeftCol, j.RightCol)
	}
	schema, err := j.Schema(e.db)
	if err != nil {
		return nil, err
	}

	// Hash build on the right input, probe with the left, preserving left
	// order for determinism.
	build := make(map[int64][]int, len(right.Rows))
	for idx, row := range right.Rows {
		v := row[ri]
		build[v] = append(build[v], idx)
	}
	res := &Result{Schema: schema}
	for _, lrow := range left.Rows {
		for _, idx := range build[lrow[li]] {
			out := make([]int64, 0, len(schema))
			out = append(out, lrow...)
			out = append(out, right.Rows[idx]...)
			res.Rows = append(res.Rows, out)
		}
	}
	return res, nil
}

// aggState accumulates one group's aggregates.
type aggState struct {
	group []int64
	count int64
	sum   []int64
	min   []int64
	max   []int64
	seen  bool
}

func (e *Engine) execAggregate(a *Aggregate, sink storage.PageSink) (*Result, error) {
	in, err := e.Execute(a.Input, sink)
	if err != nil {
		return nil, err
	}
	schema, err := a.Schema(e.db)
	if err != nil {
		return nil, err
	}
	groupCols := make([]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groupCols[i] = in.Schema.Index(g)
	}
	aggCols := make([]int, len(a.Aggs))
	for i, sp := range a.Aggs {
		if sp.Kind == AggCount {
			aggCols[i] = -1
		} else {
			aggCols[i] = in.Schema.Index(sp.Col)
		}
	}

	groups := make(map[string]*aggState)
	var order []string
	var keyBuf []byte
	for _, row := range in.Rows {
		var key string
		keyBuf, key = rowKey(row, groupCols, keyBuf)
		st := groups[key]
		if st == nil {
			st = &aggState{
				group: make([]int64, len(groupCols)),
				sum:   make([]int64, len(a.Aggs)),
				min:   make([]int64, len(a.Aggs)),
				max:   make([]int64, len(a.Aggs)),
			}
			for i, c := range groupCols {
				st.group[i] = row[c]
			}
			groups[key] = st
			order = append(order, key)
		}
		st.count++
		for i, c := range aggCols {
			if c < 0 {
				continue
			}
			v := row[c]
			st.sum[i] += v
			if !st.seen || v < st.min[i] {
				st.min[i] = v
			}
			if !st.seen || v > st.max[i] {
				st.max[i] = v
			}
		}
		st.seen = true
	}

	// Scalar aggregation over an empty input still yields one row of zeros,
	// matching COUNT(*) = 0 semantics.
	if len(a.GroupBy) == 0 && len(groups) == 0 {
		st := &aggState{
			sum: make([]int64, len(a.Aggs)),
			min: make([]int64, len(a.Aggs)),
			max: make([]int64, len(a.Aggs)),
		}
		groups[""] = st
		order = append(order, "")
	}

	res := &Result{Schema: schema}
	for _, key := range order {
		st := groups[key]
		out := make([]int64, 0, len(schema))
		out = append(out, st.group...)
		for i, sp := range a.Aggs {
			switch sp.Kind {
			case AggCount:
				out = append(out, st.count)
			case AggSum:
				out = append(out, st.sum[i])
			case AggAvg:
				if st.count == 0 {
					out = append(out, 0)
				} else {
					out = append(out, st.sum[i]/st.count)
				}
			case AggMin:
				out = append(out, st.min[i])
			default:
				out = append(out, st.max[i])
			}
		}
		res.Rows = append(res.Rows, out)
	}
	// Deterministic output: sort by group columns.
	if len(groupCols) > 0 {
		k := len(groupCols)
		sort.SliceStable(res.Rows, func(i, j int) bool {
			a, b := res.Rows[i], res.Rows[j]
			for c := 0; c < k; c++ {
				if a[c] != b[c] {
					return a[c] < b[c]
				}
			}
			return false
		})
	}
	return res, nil
}

func (e *Engine) execProject(p *Project, sink storage.PageSink) (*Result, error) {
	in, err := e.Execute(p.Input, sink)
	if err != nil {
		return nil, err
	}
	schema, err := p.Schema(e.db)
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(p.Cols))
	for i, n := range p.Cols {
		cols[i] = in.Schema.Index(n)
	}
	res := &Result{Schema: schema}
	var seen map[string]bool
	var keyBuf []byte
	if p.Dedup {
		seen = make(map[string]bool, len(in.Rows))
	}
	for _, row := range in.Rows {
		if p.Dedup {
			var key string
			keyBuf, key = rowKey(row, cols, keyBuf)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		out := make([]int64, len(cols))
		for i, c := range cols {
			out[i] = row[c]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func (e *Engine) execSort(s *Sort, sink storage.PageSink) (*Result, error) {
	in, err := e.Execute(s.Input, sink)
	if err != nil {
		return nil, err
	}
	by := make([]int, len(s.By))
	for i, b := range s.By {
		by[i] = in.Schema.Index(b)
	}
	sort.SliceStable(in.Rows, func(i, j int) bool {
		a, b := in.Rows[i], in.Rows[j]
		for _, c := range by {
			if a[c] != b[c] {
				if s.Desc {
					return a[c] > b[c]
				}
				return a[c] < b[c]
			}
		}
		return false
	})
	if s.Limit > 0 && int64(len(in.Rows)) > s.Limit {
		in.Rows = in.Rows[:s.Limit]
	}
	return in, nil
}
