package engine

import (
	"fmt"
	"math"

	"repro/internal/relation"
	"repro/internal/storage"
)

// EmitAccess streams the page-reference pattern of the plan into sink
// without materializing any rows, and returns the number of references
// emitted (the plan's cost in logical block reads).
//
// Full scans and clustered index ranges are exact. Unclustered index scans
// would require inverting the tuple generators to find matching rows, so
// they emit a Yao-sized pseudo-random page subset instead, chosen
// deterministically from seed: the same query (same seed) always touches
// the same pages. This is what lets the Figure 7 buffer experiment replay
// 17 000 queries (tens of millions of page references) in seconds while
// keeping re-submissions of a query byte-identical in their access pattern.
func (e *Engine) EmitAccess(n Node, seed uint64, sink storage.PageSink) (int64, error) {
	switch t := n.(type) {
	case *Scan:
		return e.accessScan(t, seed, sink)
	case *Join:
		l, err := e.EmitAccess(t.Left, seed, sink)
		if err != nil {
			return 0, err
		}
		r, err := e.EmitAccess(t.Right, seed+0x9e3779b97f4a7c15, sink)
		return l + r, err
	case *Aggregate:
		return e.EmitAccess(t.Input, seed, sink)
	case *Project:
		return e.EmitAccess(t.Input, seed, sink)
	case *Sort:
		return e.EmitAccess(t.Input, seed, sink)
	default:
		return 0, fmt.Errorf("engine: access: unknown node type %T", n)
	}
}

func (e *Engine) accessScan(s *Scan, seed uint64, sink storage.PageSink) (int64, error) {
	rel, err := e.db.Relation(s.Rel)
	if err != nil {
		return 0, err
	}
	pager := e.Pager()
	pages := pager.Pages(s.Rel)

	ip, indexed := indexUsable(s)
	if !indexed {
		pager.EmitAll(s.Rel, sink)
		return pages, nil
	}
	ci := rel.MustColumnIndex(s.Index)
	if rel.Columns[ci].Kind == relation.KindSequential {
		lo, hi := ip.Lo, ip.Hi
		if ip.Op == OpEQ {
			hi = ip.Lo
		}
		if lo < 0 {
			lo = 0
		}
		if hi > rel.Rows-1 {
			hi = rel.Rows - 1
		}
		if hi < lo {
			return 0, nil
		}
		ploHigh := pager.PageOfRow(rel, lo)
		phiHigh := pager.PageOfRow(rel, hi)
		pager.EmitRange(s.Rel, ploHigh, phiHigh, sink)
		return phiHigh - ploHigh + 1, nil
	}

	// Unclustered: pick a deterministic pseudo-random page subset whose
	// size matches the Yao estimate.
	matches := float64(rel.Rows) * ip.selectivity(rel.Cardinality(ci))
	k := int64(math.Ceil(yao(float64(pages), matches)))
	if k <= 0 {
		return 0, nil
	}
	if k >= pages {
		pager.EmitAll(s.Rel, sink)
		return pages, nil
	}
	chosen := make(map[int64]bool, k)
	set := make([]int64, 0, k)
	// Mix the seed with the predicate so different parameter values of the
	// same template touch different pages.
	h := seed ^ mix(uint64(ip.Lo)+1) ^ mix(uint64(ip.Hi)+3) ^ mix(uint64(ci)+5)
	for int64(len(set)) < k {
		h = mix(h)
		pg := int64(h % uint64(pages))
		if chosen[pg] {
			continue
		}
		chosen[pg] = true
		set = append(set, pg)
	}
	pager.EmitSet(s.Rel, set, sink)
	return k, nil
}

// mix is the SplitMix64 finalizer used for deterministic page selection.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
