package engine

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// This file implements the semantic derivation rules: deciding whether a
// query described by one Descriptor can be answered exactly from the
// materialized result of another (Subsumes), and performing that rewrite
// over the cached rows (Rewrite). Three rules are supported:
//
//	R1 re-filter:  scan ← scan       residual predicates + projection
//	R2 roll-up:    aggregate ← aggregate   coarser group-by, merged aggs
//	R3 aggregate:  aggregate ← scan        aggregate the cached detail rows
//
// All rules are exact: Execute(q.Plan()) and Rewrite(anc, q, Execute(
// anc.Plan())) produce identical results, row for row, in identical
// order. The equivalence fuzz corpus in internal/derive asserts this
// across the rule grid.

// rewriteMode names which rule applies to a (ancestor, query) pair.
type rewriteMode int

const (
	rewriteNone rewriteMode = iota
	rewriteFilter
	rewriteRollup
	rewriteAggregate
)

// interval is the closed value range a conjunctive predicate set admits on
// one column. lo > hi denotes the empty range.
type interval struct{ lo, hi int64 }

// contains reports whether every value in q also lies in a. The empty
// range is contained in everything.
func (a interval) contains(q interval) bool {
	if q.lo > q.hi {
		return true
	}
	return a.lo <= q.lo && q.hi <= a.hi
}

// equals reports interval equality, treating all empty ranges as equal.
func (a interval) equals(q interval) bool {
	if a.lo > a.hi && q.lo > q.hi {
		return true
	}
	return a == q
}

// predIntervals intersects a conjunctive predicate list into one closed
// interval per column.
func predIntervals(preds []Pred) map[string]interval {
	m := make(map[string]interval, len(preds))
	for i := range preds {
		p := &preds[i]
		iv := interval{p.Lo, p.Hi}
		if p.Op == OpEQ {
			iv = interval{p.Lo, p.Lo}
		}
		if cur, ok := m[p.Col]; ok {
			if iv.lo < cur.lo {
				iv.lo = cur.lo
			}
			if iv.hi > cur.hi {
				iv.hi = cur.hi
			}
		}
		m[p.Col] = iv
	}
	return m
}

// residualPred is one predicate the rewrite re-applies to ancestor rows:
// the column's position in the ancestor's output layout plus the admitted
// interval.
type residualPred struct {
	pos int
	iv  interval
}

// matches reports whether a row passes every residual predicate.
func residualMatch(row []int64, residual []residualPred) bool {
	for i := range residual {
		v := row[residual[i].pos]
		if v < residual[i].iv.lo || v > residual[i].iv.hi {
			return false
		}
	}
	return true
}

// aggSource maps one query aggregate onto the ancestor columns it is
// derived from.
type aggSource struct {
	kind AggKind
	// pos is the ancestor output position holding the partial aggregate
	// (sum for AggSum/AggAvg, min/max/count likewise). For rewriteAggregate
	// it is the detail column to aggregate (−1 for AggCount).
	pos int
	// countPos is the ancestor count position AggAvg additionally needs;
	// −1 otherwise.
	countPos int
}

// derivationPlan is the analyzed recipe for answering q from anc's result.
type derivationPlan struct {
	mode     rewriteMode
	residual []residualPred
	// outPos maps each query output column (scan shape) or group-by column
	// (aggregate shapes) to its position in the ancestor's output layout.
	outPos []int
	// aggs maps each query aggregate to its ancestor sources (aggregate
	// shapes only).
	aggs []aggSource
}

// ancLayout returns the ancestor's output column names in layout order:
// Cols for the scan shape, GroupBy followed by aggregate output names for
// the aggregate shape. ok is false when the layout is unknown (a scan
// shape with implicit "all columns").
func ancLayout(d *Descriptor) (names []string, groupLen int, ok bool) {
	if !d.IsAggregate() {
		if len(d.Cols) == 0 {
			return nil, 0, false
		}
		return d.Cols, len(d.Cols), true
	}
	names = make([]string, 0, len(d.GroupBy)+len(d.Aggs))
	names = append(names, d.GroupBy...)
	for i := range d.Aggs {
		names = append(names, d.Aggs[i].As)
	}
	return names, len(d.GroupBy), true
}

// queryAnalysis is the query-side half of the containment test,
// computable once per miss and reusable against every candidate.
type queryAnalysis struct {
	iv map[string]interval
	// cols are the constrained columns in sorted order, for deterministic
	// residual evaluation.
	cols []string
}

// analyzeQuery normalizes the query's predicates.
func analyzeQuery(q *Descriptor) *queryAnalysis {
	iv := predIntervals(q.Preds)
	cols := make([]string, 0, len(iv))
	for col := range iv {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	return &queryAnalysis{iv: iv, cols: cols}
}

// analyze decides whether q is derivable from anc and, if so, returns the
// rewrite recipe.
func analyze(anc, q *Descriptor) (*derivationPlan, bool) {
	return analyzeWith(anc, q, analyzeQuery(q))
}

// analyzeWith is analyze with the query-side normalization precomputed
// (see Matcher).
func analyzeWith(anc, q *Descriptor, qa *queryAnalysis) (*derivationPlan, bool) {
	if anc.Rel != q.Rel {
		return nil, false
	}
	layout, groupLen, ok := ancLayout(anc)
	if !ok {
		return nil, false
	}
	pos := make(map[string]int, len(layout))
	for i, n := range layout {
		pos[n] = i
	}

	// Predicate containment: q must imply anc (anc's scan kept every row q
	// needs), and the difference must be re-checkable on anc's output. For
	// the aggregate ancestor only group-by columns carry raw values, so
	// residuals must land in the leading groupLen positions.
	ancIv := predIntervals(anc.Preds)
	qIv := qa.iv
	for col, a := range ancIv {
		qi, ok := qIv[col]
		if !ok || !a.contains(qi) {
			return nil, false
		}
	}
	plan := &derivationPlan{}
	for _, col := range qa.cols {
		qi := qIv[col]
		if a, ok := ancIv[col]; ok && a.equals(qi) {
			continue // already guaranteed by the ancestor's scan
		}
		p, ok := pos[col]
		if !ok || p >= groupLen {
			return nil, false
		}
		plan.residual = append(plan.residual, residualPred{pos: p, iv: qi})
	}

	switch {
	case !q.IsAggregate() && !anc.IsAggregate():
		// R1: project q's columns out of the ancestor's rows.
		if len(q.Cols) == 0 {
			return nil, false // implicit "all columns" needs the schema
		}
		plan.mode = rewriteFilter
		for _, c := range q.Cols {
			p, ok := pos[c]
			if !ok {
				return nil, false
			}
			plan.outPos = append(plan.outPos, p)
		}
		return plan, true

	case q.IsAggregate() && anc.IsAggregate():
		// R2: roll up a finer aggregate. Groups merge along the group-by
		// hierarchy, so q's grouping must be a subset of anc's, and every
		// query aggregate must be reconstructible from the partials.
		plan.mode = rewriteRollup
		for _, g := range q.GroupBy {
			p, ok := pos[g]
			if !ok || p >= groupLen {
				return nil, false
			}
			plan.outPos = append(plan.outPos, p)
		}
		countPos := -1
		sumPos := make(map[string]int)
		minPos := make(map[string]int)
		maxPos := make(map[string]int)
		for i := range anc.Aggs {
			sp := &anc.Aggs[i]
			p := groupLen + i
			switch sp.Kind {
			case AggCount:
				countPos = p
			case AggSum:
				sumPos[sp.Col] = p
			case AggMin:
				minPos[sp.Col] = p
			case AggMax:
				maxPos[sp.Col] = p
			case AggAvg:
				// An ancestor AVG column carries no mergeable partial;
				// AVG always derives from the SUM and COUNT columns.
			}
		}
		for i := range q.Aggs {
			sp := &q.Aggs[i]
			src := aggSource{kind: sp.Kind, pos: -1, countPos: -1}
			switch sp.Kind {
			case AggCount:
				src.pos = countPos
			case AggSum:
				if p, ok := sumPos[sp.Col]; ok {
					src.pos = p
				}
			case AggMin:
				if p, ok := minPos[sp.Col]; ok {
					src.pos = p
				}
			case AggMax:
				if p, ok := maxPos[sp.Col]; ok {
					src.pos = p
				}
			case AggAvg:
				// AVG finalizes as integer division of the totals, so it
				// rolls up exactly from SUM and COUNT partials.
				if p, ok := sumPos[sp.Col]; ok {
					src.pos = p
					src.countPos = countPos
				}
			}
			if src.pos < 0 || (sp.Kind == AggAvg && src.countPos < 0) {
				return nil, false
			}
			plan.aggs = append(plan.aggs, src)
		}
		return plan, true

	case q.IsAggregate() && !anc.IsAggregate():
		// R3: aggregate the cached detail rows directly.
		plan.mode = rewriteAggregate
		for _, g := range q.GroupBy {
			p, ok := pos[g]
			if !ok {
				return nil, false
			}
			plan.outPos = append(plan.outPos, p)
		}
		for i := range q.Aggs {
			sp := &q.Aggs[i]
			src := aggSource{kind: sp.Kind, pos: -1, countPos: -1}
			if sp.Kind == AggCount {
				plan.aggs = append(plan.aggs, src)
				continue
			}
			p, ok := pos[sp.Col]
			if !ok {
				return nil, false
			}
			src.pos = p
			plan.aggs = append(plan.aggs, src)
		}
		return plan, true

	default:
		// A scan cannot be recovered from an aggregate: the rows are gone.
		return nil, false
	}
}

// Subsumes reports whether the query described by q can be answered
// exactly from the materialized result of anc: same relation, anc's
// predicates no stricter than q's, residual predicates re-checkable on
// anc's output, and q's outputs recoverable (projection, group-by roll-up
// or re-aggregation of detail rows).
func Subsumes(anc, q *Descriptor) bool {
	_, ok := analyze(anc, q)
	return ok
}

// Matcher amortizes the query-side half of Subsumes across candidates:
// one miss is tested against every cached descriptor of a relation, and
// re-normalizing the query's predicates per candidate would dominate the
// scan.
type Matcher struct {
	q  *Descriptor
	qa *queryAnalysis
}

// NewMatcher prepares q for repeated containment tests.
func NewMatcher(q *Descriptor) *Matcher {
	return &Matcher{q: q, qa: analyzeQuery(q)}
}

// Subsumes reports whether the matcher's query is derivable from anc.
// It is equivalent to Subsumes(anc, q).
func (m *Matcher) Subsumes(anc *Descriptor) bool {
	_, ok := analyzeWith(anc, m.q, m.qa)
	return ok
}

// Rewrite answers q from the materialized result of anc, which must be the
// execution result of anc.Plan(). The returned result is identical — rows,
// order and schema widths — to executing q.Plan() against the database the
// ancestor was computed from. It fails when q is not derivable from anc.
func Rewrite(anc, q *Descriptor, res *Result) (*Result, error) {
	plan, ok := analyze(anc, q)
	if !ok {
		return nil, fmt.Errorf("engine: rewrite: %s is not derivable from cached %s", q.Rel, anc.Rel)
	}
	switch plan.mode {
	case rewriteFilter:
		return rewriteProject(plan, q, res), nil
	case rewriteRollup:
		return rewriteMerge(plan, q, res), nil
	default:
		return rewriteAggregateRows(plan, q, res), nil
	}
}

// derivedSchema builds the output schema of the derived result: group/
// projection columns keep the ancestor's stored widths, aggregate outputs
// use the engine's fixed aggregate width.
func derivedSchema(plan *derivationPlan, q *Descriptor, res *Result) Schema {
	var out Schema
	for _, p := range plan.outPos {
		out = append(out, res.Schema[p])
	}
	if plan.mode == rewriteFilter {
		// Projection may rename nothing, but output names follow q.Cols.
		for i := range out {
			out[i].Name = q.Cols[i]
		}
		return out
	}
	for i := range q.Aggs {
		out = append(out, ColRef{Name: q.Aggs[i].As, Width: aggWidth})
	}
	return out
}

// rewriteProject implements R1: residual filter plus projection, in the
// ancestor's row order (which is the base relation's row order, matching
// a remote scan).
func rewriteProject(plan *derivationPlan, q *Descriptor, res *Result) *Result {
	out := &Result{Schema: derivedSchema(plan, q, res)}
	for _, row := range res.Rows {
		if !residualMatch(row, plan.residual) {
			continue
		}
		pr := make([]int64, len(plan.outPos))
		for i, p := range plan.outPos {
			pr[i] = row[p]
		}
		out.Rows = append(out.Rows, pr)
	}
	return out
}

// mergeState accumulates one output group during a roll-up or
// re-aggregation.
type mergeState struct {
	group []int64
	count int64
	sum   []int64
	min   []int64
	max   []int64
	seen  bool
}

// finalize renders the group exactly as execAggregate does: AVG is the
// integer division of the summed totals, empty scalar groups yield zeros.
func (st *mergeState) finalize(aggs []aggSource) []int64 {
	out := make([]int64, 0, len(st.group)+len(aggs))
	out = append(out, st.group...)
	for i := range aggs {
		switch aggs[i].kind {
		case AggCount:
			out = append(out, st.count)
		case AggSum:
			out = append(out, st.sum[i])
		case AggAvg:
			if st.count == 0 {
				out = append(out, 0)
			} else {
				out = append(out, st.sum[i]/st.count)
			}
		case AggMin:
			out = append(out, st.min[i])
		default:
			out = append(out, st.max[i])
		}
	}
	return out
}

// mergeRows drives the shared grouping loop of R2 and R3: rows from the
// ancestor are filtered, keyed by the query's group columns and folded via
// fold, then finalized and sorted by group values — the same deterministic
// order execAggregate produces.
func mergeRows(plan *derivationPlan, q *Descriptor, res *Result,
	fold func(st *mergeState, row []int64)) *Result {
	groups := make(map[string]*mergeState)
	var order []string
	var keyBuf []byte
	for _, row := range res.Rows {
		if !residualMatch(row, plan.residual) {
			continue
		}
		var key string
		keyBuf, key = rowKey(row, plan.outPos, keyBuf)
		st := groups[key]
		if st == nil {
			st = &mergeState{
				group: make([]int64, len(plan.outPos)),
				sum:   make([]int64, len(plan.aggs)),
				min:   make([]int64, len(plan.aggs)),
				max:   make([]int64, len(plan.aggs)),
			}
			for i, p := range plan.outPos {
				st.group[i] = row[p]
			}
			groups[key] = st
			order = append(order, key)
		}
		fold(st, row)
	}
	// Scalar aggregation over an empty input still yields one zero row,
	// matching execAggregate's COUNT(*) = 0 semantics.
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		st := &mergeState{
			sum: make([]int64, len(plan.aggs)),
			min: make([]int64, len(plan.aggs)),
			max: make([]int64, len(plan.aggs)),
		}
		groups[""] = st
		order = append(order, "")
	}
	out := &Result{Schema: derivedSchema(plan, q, res)}
	for _, key := range order {
		out.Rows = append(out.Rows, groups[key].finalize(plan.aggs))
	}
	if k := len(plan.outPos); k > 0 {
		sort.SliceStable(out.Rows, func(i, j int) bool {
			a, b := out.Rows[i], out.Rows[j]
			for c := 0; c < k; c++ {
				if a[c] != b[c] {
					return a[c] < b[c]
				}
			}
			return false
		})
	}
	return out
}

// rewriteMerge implements R2: fold the ancestor's partial aggregates into
// the coarser groups. Sums add, minima and maxima fold, the group count
// (feeding both COUNT outputs and AVG's divisor) accumulates exactly once
// per ancestor row, and AVG divides the merged totals at finalize.
func rewriteMerge(plan *derivationPlan, q *Descriptor, res *Result) *Result {
	countPos := mergeCountPos(plan)
	return mergeRows(plan, q, res, func(st *mergeState, row []int64) {
		for i := range plan.aggs {
			src := &plan.aggs[i]
			switch src.kind {
			case AggSum, AggAvg:
				st.sum[i] += row[src.pos]
			case AggMin:
				if v := row[src.pos]; !st.seen || v < st.min[i] {
					st.min[i] = v
				}
			case AggMax:
				if v := row[src.pos]; !st.seen || v > st.max[i] {
					st.max[i] = v
				}
			case AggCount:
				// The group count accumulates exactly once per ancestor
				// row via countPos below, never per output column.
			}
		}
		if countPos >= 0 {
			st.count += row[countPos]
		}
		st.seen = true
	})
}

// mergeCountPos returns the ancestor position carrying the group count
// needed by COUNT or AVG outputs, or −1 when no output needs it. All
// sources resolve to the ancestor's single COUNT column, so any match
// carries the same position.
func mergeCountPos(plan *derivationPlan) int {
	for i := range plan.aggs {
		if plan.aggs[i].kind == AggCount {
			return plan.aggs[i].pos
		}
		if plan.aggs[i].kind == AggAvg {
			return plan.aggs[i].countPos
		}
	}
	return -1
}

// rewriteAggregateRows implements R3: aggregate the cached detail rows
// with execAggregate's exact accumulation and finalization semantics.
func rewriteAggregateRows(plan *derivationPlan, q *Descriptor, res *Result) *Result {
	return mergeRows(plan, q, res, func(st *mergeState, row []int64) {
		st.count++
		for i := range plan.aggs {
			src := &plan.aggs[i]
			if src.pos < 0 {
				continue // COUNT consumes no column
			}
			v := row[src.pos]
			st.sum[i] += v
			if !st.seen || v < st.min[i] {
				st.min[i] = v
			}
			if !st.seen || v > st.max[i] {
				st.max[i] = v
			}
		}
		st.seen = true
	})
}

// DeriveCost returns the cost of answering a query by re-scanning a cached
// retrieved set of the given size, in the paper's logical block reads: the
// number of pages the set occupies. A zero or negative page size selects
// the experiments' default.
func DeriveCost(ancestorBytes int64, pageSize int) float64 {
	if pageSize <= 0 {
		pageSize = relation.DefaultPageSize
	}
	if ancestorBytes <= 0 {
		return 1
	}
	pages := (ancestorBytes + int64(pageSize) - 1) / int64(pageSize)
	if pages < 1 {
		pages = 1
	}
	return float64(pages)
}
