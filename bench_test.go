package watchman_test

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (BenchmarkFigure2 … BenchmarkFigure7), the optimality and
// ablation experiments from DESIGN.md, and micro-benchmarks of the cache's
// hot paths. Figure benchmarks report their headline values through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every result
// of the evaluation in one run.
//
// Benchmark scale: the figure benches default to 6 000-query traces (the
// paper's full 17 000-query runs are produced by `watchman experiments` or
// `go run ./cmd/watchman experiments`); shapes are stable at this size and
// the whole suite completes in a few minutes.

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"testing"

	watchman "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

const (
	benchQueries       = 6000
	benchBufferQueries = 2000
	benchSeed          = 42
)

// benchSuite is shared across figure benchmarks so the traces and the
// standard sweep are generated once.
var benchSuite = experiments.NewSuite(experiments.Options{
	Queries:       benchQueries,
	BufferQueries: benchBufferQueries,
	Seed:          benchSeed,
})

// benchTraces memoizes raw traces for the micro/ablation benches.
var benchTraces = map[string]*trace.Trace{}

func benchTrace(b *testing.B, name string) *trace.Trace {
	b.Helper()
	if tr, ok := benchTraces[name]; ok {
		return tr
	}
	var tr *trace.Trace
	var err error
	switch name {
	case "tpcd":
		tr, err = benchSuite.TPCD()
	case "setquery":
		tr, err = benchSuite.SetQuery()
	case "multiclass":
		_, tr, err = workload.GenerateMulticlass(0, workload.MulticlassConfig{
			Config: workload.Config{Queries: benchQueries, Seed: benchSeed},
		})
	default:
		b.Fatalf("unknown trace %q", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	benchTraces[name] = tr
	return tr
}

// reportCell parses a table cell and reports it as a benchmark metric.
func reportCell(b *testing.B, tb *metrics.Table, row, col int, unit string) {
	b.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		return // non-numeric cell (e.g. byte sizes); skip
	}
	b.ReportMetric(v, unit)
}

// BenchmarkFigure2InfiniteCache regenerates the infinite-cache table (E1).
func BenchmarkFigure2InfiniteCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := benchSuite.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, tb, 0, 1, "tpcd-CSRinf")
		reportCell(b, tb, 0, 2, "tpcd-HRinf")
		reportCell(b, tb, 1, 1, "sq-CSRinf")
		reportCell(b, tb, 1, 2, "sq-HRinf")
	}
}

// BenchmarkFigure3ImpactOfK regenerates the impact-of-K curves (E2).
func BenchmarkFigure3ImpactOfK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbs, err := benchSuite.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		// LNC-RA CSR at K=1 and K=5 on TPC-D: the paper's improvement.
		reportCell(b, tbs[0], 0, 1, "tpcd-K1")
		reportCell(b, tbs[0], 4, 1, "tpcd-K5")
	}
}

// BenchmarkFigure4CostSavings regenerates the CSR-vs-cache-size curves (E3,
// including ablation A1: the LNC-RA vs LNC-R columns differ exactly by the
// admission algorithm).
func BenchmarkFigure4CostSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbs, err := benchSuite.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		// CSR at 1% cache: LNC-RA vs LRU, both traces.
		reportCell(b, tbs[0], 3, 1, "tpcd-LNCRA")
		reportCell(b, tbs[0], 3, 3, "tpcd-LRU")
		reportCell(b, tbs[1], 3, 1, "sq-LNCRA")
		reportCell(b, tbs[1], 3, 3, "sq-LRU")
	}
}

// BenchmarkFigure5HitRatios regenerates the HR-vs-cache-size curves (E4).
func BenchmarkFigure5HitRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbs, err := benchSuite.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, tbs[0], 3, 1, "tpcd-LNCRA")
		reportCell(b, tbs[0], 3, 3, "tpcd-LRU")
	}
}

// BenchmarkFigure6Fragmentation regenerates the cache-utilization table (E5).
func BenchmarkFigure6Fragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbs, err := benchSuite.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		// Utilization at 1% cache on TPC-D: LNC-RA vs LRU.
		reportCell(b, tbs[0], 2, 1, "tpcd-LNCRA-util%")
		reportCell(b, tbs[0], 2, 3, "tpcd-LRU-util%")
	}
}

// BenchmarkFigure7BufferHints regenerates the buffer-cooperation experiment
// (E6). This is the heaviest benchmark: each iteration streams millions of
// page references through the pool for every p₀ value.
func BenchmarkFigure7BufferHints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := benchSuite.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, tb, 0, 1, "HR-nohints")
		reportCell(b, tb, 1, 1, "HR-p100")
		reportCell(b, tb, 3, 1, "HR-p60")
		reportCell(b, tb, 6, 1, "HR-p0")
	}
}

// BenchmarkOptimalityLNCStar regenerates the §2.3 optimality check (E7).
func BenchmarkOptimalityLNCStar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := benchSuite.Optimality(100, 12)
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, tb, 0, 2, "mean-ratio")
	}
}

// BenchmarkAblationRetainedInfo measures retained reference information on
// vs off (A2).
func BenchmarkAblationRetainedInfo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := benchSuite.AblationRetained()
		if err != nil {
			b.Fatal(err)
		}
		reportCell(b, tb, 1, 2, "tpcd1pct-on")
		reportCell(b, tb, 1, 3, "tpcd1pct-off")
	}
}

// BenchmarkAblationStrictTiers contrasts the default profit-only LNC
// ordering with the literal Figure-1 tier loop (A6; see DESIGN.md).
func BenchmarkAblationStrictTiers(b *testing.B) {
	tr := benchTrace(b, "tpcd")
	capacity := sim.CacheBytesForFraction(tr, 1)
	for i := 0; i < b.N; i++ {
		relaxed, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LNCRA, K: 4}, capacity)
		if err != nil {
			b.Fatal(err)
		}
		strict, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LNCRA, K: 4, StrictTiers: true}, capacity)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(relaxed.CSR(), "CSR-default")
		b.ReportMetric(strict.CSR(), "CSR-strict")
	}
}

// BenchmarkAblationEvictors compares the exact scan evictor with the
// approximate heap evictor (A3): CSR delta and throughput.
func BenchmarkAblationEvictors(b *testing.B) {
	tr := benchTrace(b, "tpcd")
	capacity := sim.CacheBytesForFraction(tr, 1)
	for _, kind := range []core.EvictorKind{core.ScanEvictor, core.HeapEvictor} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var csr float64
			for i := 0; i < b.N; i++ {
				res, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LNCRA, K: 4, Evictor: kind}, capacity)
				if err != nil {
					b.Fatal(err)
				}
				csr = res.CSR()
			}
			b.ReportMetric(csr, "CSR")
			b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}

// BenchmarkExtensionMulticlass runs the §6 multiclass extension (A4).
func BenchmarkExtensionMulticlass(b *testing.B) {
	tr := benchTrace(b, "multiclass")
	capacity := sim.CacheBytesForFraction(tr, 1)
	for i := 0; i < b.N; i++ {
		k1, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LRUK, K: 1}, capacity)
		if err != nil {
			b.Fatal(err)
		}
		k4, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LRUK, K: 4}, capacity)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(k1.CSR(), "LRUK-K1")
		b.ReportMetric(k4.CSR(), "LRUK-K4")
	}
}

// BenchmarkBaselinesLFULCS compares the related-work baselines (A5).
func BenchmarkBaselinesLFULCS(b *testing.B) {
	tr := benchTrace(b, "tpcd")
	capacity := sim.CacheBytesForFraction(tr, 1)
	for i := 0; i < b.N; i++ {
		for _, p := range []core.PolicyKind{core.LFU, core.LCS, core.LNCRA} {
			res, err := sim.ReplaySetup(tr, sim.Setup{Policy: p, K: 4}, capacity)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.CSR(), p.String())
		}
	}
}

// BenchmarkCacheReferenceHit measures the hot path: a reference that hits.
func BenchmarkCacheReferenceHit(b *testing.B) {
	c, err := watchman.New(watchman.Config{Capacity: 1 << 20, K: 4, Policy: watchman.LNCRA})
	if err != nil {
		b.Fatal(err)
	}
	c.Reference(watchman.Request{QueryID: "hot query", Time: 0, Size: 100, Cost: 50})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reference(watchman.Request{QueryID: "hot query", Time: float64(i + 1), Size: 100, Cost: 50})
	}
}

// BenchmarkCacheReferenceMiss measures the miss path with admission and
// eviction under steady pressure, for both evictors.
func BenchmarkCacheReferenceMiss(b *testing.B) {
	for _, kind := range []watchman.EvictorKind{watchman.ScanEvictor, watchman.HeapEvictor} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			c, err := watchman.New(watchman.Config{
				Capacity: 64 << 10, K: 4, Policy: watchman.LNCRA, Evictor: kind,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := fmt.Sprintf("query-%d", i%4096)
				c.Reference(watchman.Request{QueryID: id, Time: float64(i), Size: 256, Cost: 100})
			}
		})
	}
}

// BenchmarkShardedReference measures the concurrent layer under parallel
// load: every GOMAXPROCS worker drives its own mix of hot (mostly-hit) and
// cold (miss/admission/eviction) references through the sharded LNC-RA
// cache. Compare with BenchmarkCacheReferenceHit/Miss for the lock-free
// single-threaded floor.
func BenchmarkShardedReference(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sc, err := watchman.NewSharded(watchman.ShardedConfig{
				Shards: shards,
				Cache:  watchman.Config{Capacity: 8 << 20, K: 4, Policy: watchman.LNCRA},
			})
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				i := int(seq.Add(1)) * 1_000_003
				for pb.Next() {
					i++
					var id string
					if i%8 == 0 {
						id = fmt.Sprintf("cold query %d", i%65536)
					} else {
						id = fmt.Sprintf("hot query %d", i%64)
					}
					sc.Reference(watchman.Request{QueryID: id, Size: 256, Cost: 100})
				}
			})
			st := sc.Stats()
			b.ReportMetric(float64(st.Hits)/float64(st.References), "hit-ratio")
			b.ReportMetric(float64(st.References)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}

// BenchmarkShardedReferenceBuffered measures the contention-free hit path
// (Buffered: true — lock-free read index, deferred bookkeeping) against
// the locked baseline on an identical all-hit workload: a 64-query hot set
// admitted up front, then referenced from every goroutine with
// precompressed IDs, so the measured work is purely the per-hit path.
//
// Two load shapes:
//
//   - load=pure: nothing but hits. This exposes the buffered path's
//     constant per-op cost (index probe + deferred-cell atomics) and, on a
//     genuinely multi-core machine at -cpu 32, the locked baseline's
//     mutex-contention collapse. On a single-core host the locked mutexes
//     never actually contend — timeslicing serializes the goroutines for
//     free — so the two modes look close there.
//   - load=snapshots: the same hit storm racing a continuous snapshot
//     writer over a ~100 MB resident population (the production
//     -snapshot-interval pressure case). The writer runs the streaming
//     path (Snapshot → StreamSnapshot): each shard leaves in bounded
//     chunks with the shard lock released between them and every byte
//     encoded outside all locks, so a locked foreground hit stalls for at
//     most one chunk copy instead of a full-shard export. Before the
//     streaming path this collapsed locked-mode throughput three orders
//     of magnitude (ExportState held each shard's mutex for a
//     millisecond-scale deep copy). The writer's own allocations are
//     attributed to the measured loop, so B/op and allocs/op in this
//     shape describe the writer, not the hit path (the hit path's zero
//     allocs are asserted by TestBufferedHitPathAllocs and visible in
//     load=pure).
//
// Run with -cpu 1,8,32. Buffered mode also reports the fraction of
// promotions shed under buffer pressure (their references still count —
// only the recency/λ signal is dropped).
func BenchmarkShardedReferenceBuffered(b *testing.B) {
	hot := make([]string, 64)
	for i := range hot {
		hot[i] = watchman.CompressID(fmt.Sprintf("hot query %d", i))
	}
	filler := make([]string, 50_000)
	for i := range filler {
		filler[i] = watchman.CompressID(fmt.Sprintf("filler %d", i))
	}
	for _, load := range []struct {
		name      string
		snapshots bool
	}{{"load=pure", false}, {"load=snapshots", true}} {
		for _, mode := range []struct {
			name     string
			buffered bool
		}{{"mode=locked", false}, {"mode=buffered", true}} {
			b.Run(load.name+"/"+mode.name, func(b *testing.B) {
				capacity := int64(8 << 20)
				if load.snapshots {
					capacity = 256 << 20 // hold the filler population: long export copies
				}
				sc, err := watchman.NewSharded(watchman.ShardedConfig{
					Shards:   16,
					Cache:    watchman.Config{Capacity: capacity, K: 4, Policy: watchman.LNCRA},
					Buffered: mode.buffered,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer sc.Close()
				for i, id := range hot {
					sc.Reference(watchman.Request{QueryID: id, Time: float64(i + 1), Size: 256, Cost: 100})
				}
				var stopExport atomic.Bool
				exportDone := make(chan struct{})
				if load.snapshots {
					for i, id := range filler {
						sc.Reference(watchman.Request{QueryID: id, Time: float64(i + 64), Size: 2048, Cost: 50})
					}
					go func() {
						defer close(exportDone)
						for !stopExport.Load() {
							_ = sc.Snapshot(io.Discard)
						}
					}()
				} else {
					close(exportDone)
				}
				var seq atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := int(seq.Add(1)) * 1_000_003
					for pb.Next() {
						i++
						sc.Reference(watchman.Request{QueryID: hot[i&63], Size: 256, Cost: 100})
					}
				})
				b.StopTimer()
				stopExport.Store(true)
				<-exportDone
				sc.Drain()
				st := sc.Stats()
				b.ReportMetric(float64(st.Hits)/float64(st.References), "hit-ratio")
				b.ReportMetric(float64(st.References)/b.Elapsed().Seconds(), "refs/s")
				if mode.buffered {
					b.ReportMetric(float64(st.PromotesSkipped)/float64(st.References), "shed-frac")
				}
			})
		}
	}
}

// BenchmarkReferenceWithRegistry is BenchmarkShardedReference with the
// telemetry registry attached: same hot/cold mix, same shard counts. The
// delta between the two is the full cost of the telemetry spine on the
// reference path; the events stay allocation-free, so it must be a few
// atomic adds per reference (< 5% on the contended hit path).
func BenchmarkReferenceWithRegistry(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			reg := watchman.NewTelemetryRegistry()
			sc, err := watchman.NewSharded(watchman.ShardedConfig{
				Shards:   shards,
				Cache:    watchman.Config{Capacity: 8 << 20, K: 4, Policy: watchman.LNCRA},
				Registry: reg,
			})
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := int(seq.Add(1)) * 1_000_003
				for pb.Next() {
					i++
					var id string
					if i%8 == 0 {
						id = fmt.Sprintf("cold query %d", i%65536)
					} else {
						id = fmt.Sprintf("hot query %d", i%64)
					}
					sc.Reference(watchman.Request{QueryID: id, Size: 256, Cost: 100})
				}
			})
			st := sc.Stats()
			b.ReportMetric(float64(st.Hits)/float64(st.References), "hit-ratio")
			b.ReportMetric(float64(st.References)/b.Elapsed().Seconds(), "refs/s")
			if snap := reg.Snapshot(); snap.References() != st.References {
				b.Fatalf("registry references %d, stats %d", snap.References(), st.References)
			}
		})
	}
}

// BenchmarkShardedReferenceFlight measures the flight recorder's cost on
// the same contended hot/cold mix at 16 shards: recorder absent (the nil
// check only), sampling 1 in 64 (the serve -debug default), and capturing
// every span. The off case must be indistinguishable from
// BenchmarkShardedReference — attaching no recorder costs one nil check
// per reference and zero allocations.
func BenchmarkShardedReferenceFlight(b *testing.B) {
	cases := []struct {
		name string
		rec  *watchman.FlightRecorder
	}{
		{"recorder=off", nil},
		{"recorder=sampled", watchman.NewFlightRecorder(watchman.FlightConfig{SampleEvery: 64})},
		{"recorder=always", watchman.NewFlightRecorder(watchman.FlightConfig{SampleEvery: 1})},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			sc, err := watchman.NewSharded(watchman.ShardedConfig{
				Shards:   16,
				Cache:    watchman.Config{Capacity: 8 << 20, K: 4, Policy: watchman.LNCRA},
				Recorder: tc.rec,
			})
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := int(seq.Add(1)) * 1_000_003
				for pb.Next() {
					i++
					var id string
					if i%8 == 0 {
						id = fmt.Sprintf("cold query %d", i%65536)
					} else {
						id = fmt.Sprintf("hot query %d", i%64)
					}
					sc.Reference(watchman.Request{QueryID: id, Size: 256, Cost: 100})
				}
			})
			st := sc.Stats()
			b.ReportMetric(float64(st.Hits)/float64(st.References), "hit-ratio")
			b.ReportMetric(float64(st.References)/b.Elapsed().Seconds(), "refs/s")
			if tc.rec != nil && len(tc.rec.Decisions(1)) == 0 {
				b.Fatal("recorder attached but captured no decisions")
			}
		})
	}
}

// BenchmarkShardedReferenceWhatIf measures the ghost matrix's cost on
// the contended hot/cold mix at 16 shards, in three configurations:
//
//   - whatif=off: no matrix — the nil-check baseline.
//   - whatif=hotpath: matrix attached with a sampling rate so high the
//     hash filter rejects essentially every reference. This isolates the
//     per-reference hot-path tax every live reference pays — one striped
//     counter add plus one hash multiply under the shard lock — and is
//     the case the acceptance bar applies to: 0 extra allocs/op and ≤5%
//     refs/s regression vs whatif=off.
//   - whatif=on: the production default (R=8, 20 ghost cells). Sampled
//     references additionally pay a value-struct channel send (no
//     allocation — relations, the only pointer payload, are absent
//     here), and the background worker replays them into the ghosts.
//     The worker's simulation CPU is real and shows up in refs/s in
//     proportion to 1/GOMAXPROCS: on a many-core host it runs on a
//     spare core and the foreground loss stays small; on a 1-CPU host
//     it timeshares with the serving path. A full FIFO sheds instead of
//     blocking, so the foreground never waits on the ghosts either way.
func BenchmarkShardedReferenceWhatIf(b *testing.B) {
	for _, tc := range []struct {
		name string
		rate int
	}{
		{"whatif=off", 0},
		{"whatif=hotpath", 1 << 20},
		{"whatif=on", 8},
	} {
		b.Run(tc.name, func(b *testing.B) {
			base := watchman.Config{Capacity: 8 << 20, K: 4, Policy: watchman.LNCRA}
			var ghosts *watchman.WhatIfMatrix
			if tc.rate > 0 {
				var err error
				ghosts, err = watchman.NewWhatIfMatrix(watchman.WhatIfConfig{Base: base, SampleRate: tc.rate})
				if err != nil {
					b.Fatal(err)
				}
			}
			sc, err := watchman.NewSharded(watchman.ShardedConfig{
				Shards: 16,
				Cache:  base,
				WhatIf: ghosts,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sc.Close()
			var seq atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := int(seq.Add(1)) * 1_000_003
				for pb.Next() {
					i++
					var id string
					if i%8 == 0 {
						id = fmt.Sprintf("cold query %d", i%65536)
					} else {
						id = fmt.Sprintf("hot query %d", i%64)
					}
					sc.Reference(watchman.Request{QueryID: id, Size: 256, Cost: 100})
				}
			})
			st := sc.Stats()
			b.ReportMetric(float64(st.Hits)/float64(st.References), "hit-ratio")
			b.ReportMetric(float64(st.References)/b.Elapsed().Seconds(), "refs/s")
			if ghosts != nil {
				rep := ghosts.Report(0)
				if rep.RefsSeen != st.References {
					b.Fatalf("matrix saw %d refs, cache served %d", rep.RefsSeen, st.References)
				}
			}
		})
	}
}

// BenchmarkCompressID measures query-ID canonicalization.
func BenchmarkCompressID(b *testing.B) {
	q := "select l_returnflag, l_linestatus, sum(l_quantity), avg(l_extendedprice) from lineitem where l_shipdate <= 2520 group by l_returnflag, l_linestatus"
	b.SetBytes(int64(len(q)))
	for i := 0; i < b.N; i++ {
		_ = watchman.CompressID(q)
	}
}

// BenchmarkTraceGeneration measures workload generation throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := watchman.TPCDTrace(0.005, watchman.WorkloadConfig{Queries: 2000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayThroughput measures end-to-end replay speed (references
// per second through the full LNC-RA stack).
func BenchmarkReplayThroughput(b *testing.B) {
	tr := benchTrace(b, "tpcd")
	capacity := sim.CacheBytesForFraction(tr, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ReplaySetup(tr, sim.Setup{Policy: core.LNCRA, K: 4}, capacity); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()*b.N)/b.Elapsed().Seconds(), "refs/s")
}
