// Package watchman is the public API of this reproduction of
//
//	Scheuermann, Shim, Vingralek: "WATCHMAN: A Data Warehouse Intelligent
//	Cache Manager", Proceedings of the 22nd VLDB Conference, 1996.
//
// WATCHMAN caches entire retrieved sets of queries. Replacement is governed
// by LNC-R — victims are chosen in ascending order of the profit metric
// λᵢ·cᵢ/sᵢ (reference rate × execution cost ÷ size) — and admission by
// LNC-A, which caches a set only when its profit exceeds the aggregate
// profit of the sets it would evict. The package also provides the paper's
// baselines (vanilla LRU, LRU-K, LFU, LCS), the offline LNC* oracle, the
// benchmark workload generators and the full experiment suite reproducing
// every figure of the paper's evaluation.
//
// Basic usage:
//
//	cache, err := watchman.New(watchman.Config{
//		Capacity: 64 << 20, // bytes
//		K:        4,
//		Policy:   watchman.LNCRA,
//	})
//	...
//	hit, payload := cache.Reference(watchman.Request{
//		QueryID: "select count(*) from bench where k100 = 7",
//		Time:    12.5,      // logical seconds
//		Size:    8,         // retrieved-set bytes
//		Cost:    25000,     // execution cost (block reads)
//		Payload: rows,      // optional materialized result
//	})
//
// On a hit, payload is the previously stored retrieved set. On a miss the
// caller executes the query; the cache has already decided admission and
// stored the payload if admitted.
//
// # Concurrent usage
//
// Cache is single-threaded by design (simulations stay deterministic).
// For concurrent traffic use NewSharded, which partitions capacity across
// mutex-guarded shards, routes by the query-ID signature, stamps requests
// from a wall-clock time source, and coalesces concurrent misses on the
// same query into one Loader execution:
//
//	cache, err := watchman.NewSharded(watchman.ShardedConfig{
//		Shards: 16,
//		Cache:  watchman.Config{Capacity: 1 << 30, K: 4, Policy: watchman.LNCRA},
//		Loader: func(req watchman.Request) (payload any, size int64, cost float64, err error) {
//			rows, stats := executeQuery(req.QueryID) // runs once per in-flight query
//			return rows, stats.Bytes, stats.BlockReads, nil
//		},
//	})
//	...
//	payload, hit, err := cache.Load(watchman.Request{QueryID: query})
//
// Callers that already know a query's size and cost (e.g. trace replays)
// can use Sharded.Reference instead, which mirrors Cache.Reference. The
// `watchman serve` command exposes a Sharded cache over HTTP, and
// `watchman loadgen` replays traces against it concurrently.
//
// # Adaptive admission
//
// The LNC-A admission rule generalizes to admit ⇔ profit > θ·bar, and an
// AdmissionTuner tunes θ online by scoring a grid of candidates against
// shadow caches fed with recent traffic:
//
//	tuner, err := watchman.NewAdmissionTuner(watchman.AdmissionConfig{Capacity: 1 << 30})
//	cache, err := watchman.NewSharded(watchman.ShardedConfig{
//		Cache: watchman.Config{Capacity: 1 << 30, K: 4, Policy: watchman.LNCRA},
//		Tuner: tuner,
//	})
//
// The hot-path threshold read is a single atomic load; tuning rounds run
// in the background. `watchman compare` measures the adaptive admitter
// against the static policies, and `watchman serve -adaptive` exposes the
// tuner state at GET /v1/admission.
//
// # Snapshot persistence
//
// Everything a cache has learned — resident payloads, retained reference
// histories, λ-estimator state, Stats and the adaptive θ — can be
// captured as a versioned, CRC-checked binary snapshot and restored into
// a fresh cache before it starts serving, so a restart resumes warm:
//
//	var buf bytes.Buffer
//	err := cache.Snapshot(&buf)                       // Sharded: all shards
//	...
//	fresh, _ := watchman.NewSharded(sameConfig)
//	report, err := fresh.Restore(bytes.NewReader(buf.Bytes()))
//
// Sharded.NewSnapshotter adds file persistence with a background interval
// loop and atomic replace; `watchman serve -snapshot-path` wires it into
// the daemon (restore on boot, POST /v1/snapshot on demand, final flush
// on SIGTERM) and `watchman compare -restart` measures warm-vs-cold
// restart cost savings.
//
// # Observability
//
// Every reference ends in exactly one typed lifecycle Event (Config.Sink).
// A TelemetryRegistry aggregates events into counters, breakdowns and
// latency histograms; a FlightRecorder additionally captures sampled
// per-reference spans with monotonic per-stage timings and an audit ring
// of admission/eviction decisions:
//
//	cache, err := watchman.NewSharded(watchman.ShardedConfig{
//		Cache:    watchman.Config{Capacity: 1 << 30, K: 4, Policy: watchman.LNCRA},
//		Registry: watchman.NewTelemetryRegistry(),
//		Recorder: watchman.NewFlightRecorder(watchman.FlightConfig{SampleEvery: 64}),
//	})
//
// `watchman serve -debug` surfaces the recorder over HTTP — recent spans
// at GET /debug/requests, per-signature decision audits at
// GET /v1/explain/{id} with the admission inequality spelled out — and
// mounts net/http/pprof under /debug/pprof. Both hooks are nil-guarded:
// a cache without a registry or recorder pays nothing for them.
//
// A WhatIfMatrix answers counterfactual capacity and policy questions
// live: it replays a deterministic hash-sampled slice of the reference
// stream into a grid of ghost caches (capacity ladder × policy set) and
// reports each configuration's estimated CSR, per-policy miss-ratio
// curves, and an advisor verdict naming the cheapest configuration that
// would beat the current one:
//
//	ghosts, err := watchman.NewWhatIfMatrix(watchman.WhatIfConfig{Base: cacheCfg})
//	cache, err := watchman.NewSharded(watchman.ShardedConfig{Cache: cacheCfg, WhatIf: ghosts})
//
// `watchman serve -whatif` exposes the matrix at GET /v1/whatif and as
// watchman_whatif_* Prometheus families; `watchman compare -whatif`
// runs the same grid over an offline trace.
package watchman

import (
	"io"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/persist"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/whatif"
)

// Config parameterizes a Cache. See the field documentation in the aliased
// type for details.
type Config = core.Config

// Cache is the WATCHMAN cache manager.
type Cache = core.Cache

// Entry is one cached retrieved set (or its retained reference record).
type Entry = core.Entry

// Request is one query submission presented to the cache.
type Request = core.Request

// Stats are the cache's cumulative counters and the paper's metrics.
type Stats = core.Stats

// PolicyKind selects a replacement/admission policy.
type PolicyKind = core.PolicyKind

// EvictorKind selects the victim-search structure.
type EvictorKind = core.EvictorKind

// Replacement and admission policies.
const (
	// LRU is the vanilla least-recently-used baseline.
	LRU = core.LRU
	// LRUK is LRU-K at retrieved-set granularity.
	LRUK = core.LRUK
	// LFU is least-frequently-used.
	LFU = core.LFU
	// LCS evicts the largest set first (ADMS baseline).
	LCS = core.LCS
	// LNCR is the paper's Least Normalized Cost replacement.
	LNCR = core.LNCR
	// LNCRA is LNC-R with the LNC-A admission algorithm.
	LNCRA = core.LNCRA
)

// Victim-search structures.
const (
	// ScanEvictor is the exact O(n log n) selector.
	ScanEvictor = core.ScanEvictor
	// HeapEvictor is the near-exact O(k log n) selector.
	HeapEvictor = core.HeapEvictor
)

// Unlimited is a Config.Capacity value denoting an infinite cache.
const Unlimited = core.Unlimited

// New creates a cache manager.
func New(cfg Config) (*Cache, error) { return core.New(cfg) }

// CompressID canonicalizes a query string into a query ID by collapsing
// delimiter runs, as §3 of the paper describes.
func CompressID(query string) string { return core.CompressID(query) }

// Signature returns the hash signature the cache's lookup index buckets
// entries by.
func Signature(id string) uint64 { return core.Signature(id) }

// ShardedConfig parameterizes a Sharded cache: the shard count, the total
// capacity and per-shard cache configuration, an optional Loader for
// singleflight miss coalescing, and an optional time source.
type ShardedConfig = shard.Config

// Sharded is the concurrent cache: capacity partitioned over a power-of-two
// number of mutex-guarded shards, routed by Signature of the compressed
// query ID. All methods are safe for concurrent use.
type Sharded = shard.Sharded

// ShardedStats aggregates the core counters across shards and adds the
// loader/coalescing counters of the concurrency layer.
type ShardedStats = shard.Stats

// Loader executes a query on a coalesced miss; see ShardedConfig.
type Loader = shard.Loader

// DefaultShards is the shard count used when ShardedConfig.Shards is zero.
const DefaultShards = shard.DefaultShards

// DefaultPromoteBuffer is the per-shard promotion queue depth used when
// ShardedConfig.PromoteBuffer is zero (buffered mode).
const DefaultPromoteBuffer = shard.DefaultPromoteBuffer

// DefaultDeleteBuffer is the per-shard maintenance queue depth used when
// ShardedConfig.DeleteBuffer is zero (buffered mode).
const DefaultDeleteBuffer = shard.DefaultDeleteBuffer

// NewSharded creates a concurrent sharded cache manager.
func NewSharded(cfg ShardedConfig) (*Sharded, error) { return shard.New(cfg) }

// WallClock returns a time source mapping wall time to the cache's logical
// seconds, anchored at the moment of the call. NewSharded installs one by
// default; it is exported so tests and multi-cache setups can share one.
func WallClock() func() float64 { return shard.WallClock() }

// Admitter decides cache admission on the miss path: it is consulted
// whenever admitting a missed set would require evictions. Install a
// custom one via Config.Admitter; nil selects the policy default (the
// LNC-A profit test for LNCRA, admit-always otherwise).
type Admitter = core.Admitter

// AdmitterFunc adapts a plain function to the Admitter interface.
type AdmitterFunc = core.AdmitterFunc

// AdmissionDecision carries the quantities of the §2.2 profit comparison
// an Admitter rules on.
type AdmissionDecision = core.AdmissionDecision

// LNCA returns the paper's static LNC-A admission test (admit only when
// the candidate's profit strictly exceeds its victims' aggregate profit).
func LNCA() Admitter { return core.LNCA() }

// AdmissionConfig parameterizes an AdmissionTuner: shadow capacity,
// tuning window, candidate threshold grid, EMA and hysteresis factors.
type AdmissionConfig = admission.Config

// AdmissionTuner tunes the LNC-A admission threshold online: it profiles
// recent references, scores a log-spaced grid of candidate thresholds
// against persistent shadow caches, and atomically publishes the winner.
// Install one via ShardedConfig.Tuner (serving) or use Config.Admitter =
// tuner.Admitter() with a single-threaded Cache.
type AdmissionTuner = admission.Tuner

// TuningRound summarizes one completed tuning round of an AdmissionTuner.
type TuningRound = admission.Round

// NewAdmissionTuner creates an adaptive admission tuner. The initial
// published threshold is the static LNC-A setting θ = 1.
func NewAdmissionTuner(cfg AdmissionConfig) (*AdmissionTuner, error) { return admission.New(cfg) }

// Deriver decides whether a missed request can be answered from cached
// content; install one via Config.Deriver (or ShardedConfig.Deriver for
// the concurrent front). NewDeriver builds the standard implementation.
type Deriver = core.Deriver

// Derivation is the outcome of a successful Deriver.Derive call: the
// derived payload, its size, the derivation cost, the remote-cost basis
// and the cached ancestor it came from.
type Derivation = core.Derivation

// SemanticDeriver is the standard Deriver: it indexes the plan
// descriptors of currently cached entries off the event stream, matches
// misses against them with the engine's containment rules (predicate
// subsumption, group-by roll-up, re-aggregation of detail rows) and
// rewrites answers when derivation beats remote execution.
type SemanticDeriver = derive.Deriver

// DeriverConfig parameterizes a SemanticDeriver.
type DeriverConfig = derive.Config

// PlanDescriptor is the serializable plan summary derivation matches on:
// one predicated, projected scan of a base relation, optionally grouped
// and aggregated. Attach one to Request.Plan.
type PlanDescriptor = engine.Descriptor

// Pred is one conjunctive scan predicate of a PlanDescriptor.
type Pred = engine.Pred

// AggSpec is one aggregate output of a PlanDescriptor.
type AggSpec = engine.AggSpec

// Predicate comparison operators.
const (
	// OpEQ matches values equal to Pred.Lo.
	OpEQ = engine.OpEQ
	// OpRange matches values in the closed interval [Pred.Lo, Pred.Hi].
	OpRange = engine.OpRange
)

// Aggregate functions.
const (
	// AggCount is COUNT(*).
	AggCount = engine.AggCount
	// AggSum is SUM(col).
	AggSum = engine.AggSum
	// AggAvg is AVG(col).
	AggAvg = engine.AggAvg
	// AggMin is MIN(col).
	AggMin = engine.AggMin
	// AggMax is MAX(col).
	AggMax = engine.AggMax
)

// NewDeriver creates a semantic deriver.
func NewDeriver(cfg DeriverConfig) *SemanticDeriver { return derive.New(cfg) }

// Event is one typed lifecycle notification of the telemetry spine: every
// reference ends in exactly one of hit, derived hit, admitted miss,
// rejected miss or external miss, and entry departures (evictions,
// invalidations) are reported too. Install a sink via Config.Sink.
type Event = core.Event

// EventKind enumerates the lifecycle outcomes an EventSink observes.
type EventKind = core.EventKind

// The lifecycle outcomes. See the core documentation for exact semantics.
const (
	// EventHit is a reference satisfied from cache.
	EventHit = core.EventHit
	// EventMissAdmitted is a miss whose retrieved set was cached.
	EventMissAdmitted = core.EventMissAdmitted
	// EventMissRejected is a miss denied admission.
	EventMissRejected = core.EventMissRejected
	// EventEvict is a resident set evicted by replacement.
	EventEvict = core.EventEvict
	// EventInvalidate is an entry dropped by a coherence event.
	EventInvalidate = core.EventInvalidate
	// EventExternalMiss is a reference charged via Cache.Account(req, false).
	EventExternalMiss = core.EventExternalMiss
	// EventHitDerived is a reference answered by semantic derivation from
	// a cached ancestor.
	EventHitDerived = core.EventHitDerived
	// EventRestore announces a resident entry re-admitted from a snapshot.
	EventRestore = core.EventRestore
)

// EventSink observes lifecycle events; see Config.Sink for the execution
// contract (runs under the cache's context, must not call back in).
type EventSink = core.EventSink

// EventSinkFunc adapts a plain function to the EventSink interface.
type EventSinkFunc = core.EventSinkFunc

// MultiSink combines several sinks into one that forwards every event to
// each, in argument order.
func MultiSink(sinks ...EventSink) EventSink { return core.MultiSink(sinks...) }

// TelemetryRegistry aggregates lifecycle events from every shard of a
// cache into lock-cheap counters: hits/misses/evictions/invalidations/
// external misses, per-class and per-relation cost-savings breakdowns, a
// load-latency histogram and per-shard reference counts. Attach one via
// ShardedConfig.Registry (or Config.Sink for a single-threaded Cache);
// read it with Snapshot or WritePrometheus. The server exposes it at
// GET /metrics in Prometheus text format.
type TelemetryRegistry = telemetry.Registry

// TelemetrySnapshot is a point-in-time copy of a TelemetryRegistry.
type TelemetrySnapshot = telemetry.Snapshot

// NewTelemetryRegistry creates an empty telemetry registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// Span is the flight-recorder record of one reference: its identity and
// outcome, monotonic per-stage wall timings, and the decision inputs the
// admission gate evaluated (profit, bar, θ, λ, reference depth). Spans are
// delivered to a SpanSink installed via Config.Tracer.
type Span = core.Span

// Stage indexes one lifecycle stage of a reference Span.
type Stage = core.Stage

// The lifecycle stages a Span times, in hot-path order.
const (
	// StageLookup is the index probe locating the entry (or not).
	StageLookup = core.StageLookup
	// StageDerive is time spent consulting the semantic deriver.
	StageDerive = core.StageDerive
	// StageLoad is loader execution time attributed by the concurrent front.
	StageLoad = core.StageLoad
	// StageAdmit covers reference accounting, victim selection and the
	// LNC-A profit comparison.
	StageAdmit = core.StageAdmit
	// StageInsert is the residency commit of an admitted set.
	StageInsert = core.StageInsert
	// StageEvict covers evicting the victim batch of an admission.
	StageEvict = core.StageEvict
	// StageApply is the deferred-application stage of the buffered hit
	// path: the time a promotion spent queued between the lock-free hit
	// and the shard worker charging its recency/λ bookkeeping.
	StageApply = core.StageApply
	// NumStages is the number of lifecycle stages.
	NumStages = core.NumStages
)

// SpanSink observes completed reference spans; install one via
// Config.Tracer. It runs under the cache's execution context and must not
// call back into the cache. Nil disables span capture at no hot-path cost
// beyond a nil check.
type SpanSink = core.SpanSink

// ThresholdReporter is implemented by admitters whose rule is the
// thresholded comparison admit ⇔ profit > θ·bar and that can report the
// current θ; the cache stamps it onto decision events and spans so the
// exact inequality can be reproduced after the fact.
type ThresholdReporter = core.ThresholdReporter

// FlightRecorder holds bounded per-shard ring buffers of sampled
// reference spans (always capturing slow ones) and unconditional
// admission/eviction decision records. Attach one via
// ShardedConfig.Recorder; `watchman serve -debug` surfaces it at
// GET /debug/requests and GET /v1/explain/{id}.
type FlightRecorder = flight.Recorder

// FlightConfig parameterizes a FlightRecorder: sampling ratio, slow-span
// threshold, ring capacities and the optional telemetry registry fed with
// per-stage latency from every span.
type FlightConfig = flight.Config

// FlightDecision is the audit record of one admission or eviction ruling:
// the outcome and every input the gate evaluated.
type FlightDecision = flight.Decision

// NewFlightRecorder creates a flight recorder; the zero FlightConfig
// selects every default.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder { return flight.New(cfg) }

// WhatIfMatrix is the live ghost-cache grid: counterfactual (capacity ×
// policy) configurations continuously re-simulated from a hash-sampled
// slice of the reference stream. Attach one via ShardedConfig.WhatIf;
// read it with Matrix.Report or the watchman_whatif_* Prometheus
// families. Unsampled references cost no allocation and no lock on the
// hot path; sampled ones are applied by a background worker.
type WhatIfMatrix = whatif.Matrix

// WhatIfConfig parameterizes a WhatIfMatrix: the live cache's base
// Config, the 1-in-R sampling rate (ghost capacities are scaled by 1/R),
// the capacity ladder and policy set, and the advisor baseline.
type WhatIfConfig = whatif.Config

// WhatIfPolicy is one policy-axis entry of the ghost matrix.
type WhatIfPolicy = whatif.Policy

// WhatIfReport is the full matrix snapshot: per-cell estimates,
// per-policy miss-ratio curves and the advisor verdict. GET /v1/whatif
// serves it as JSON.
type WhatIfReport = whatif.Report

// NewWhatIfMatrix builds a ghost-cache matrix and starts its background
// worker; Close it (or Sharded.Close, which closes an attached matrix)
// to stop.
func NewWhatIfMatrix(cfg WhatIfConfig) (*WhatIfMatrix, error) { return whatif.New(cfg) }

// RegretTracker accumulates the regret report from a cache's event
// stream: signatures that admission rejected and that were referenced
// again, ranked by the execution cost those re-references paid. Attach it
// next to other sinks with MultiSink; `watchman compare -explain` prints
// its report.
type RegretTracker = flight.RegretTracker

// Regret is the accumulated record of one rejected-then-re-referenced
// signature.
type Regret = flight.Regret

// NewRegretTracker creates a regret tracker bounded to maxEntries
// distinct signatures (≤ 0 selects the default bound).
func NewRegretTracker(maxEntries int) *RegretTracker { return flight.NewRegretTracker(maxEntries) }

// Snapshot is the in-memory form of one persisted cache image: one
// CacheState per shard plus the optional adaptive admission state. Build
// one with Sharded.ExportState (or core-level export) and serialize it
// with WriteSnapshot.
type Snapshot = persist.Snapshot

// CacheState is the exportable learned state of one cache: entries,
// reference histories, λ context and Stats.
type CacheState = core.CacheState

// EntryState is the exportable form of one cache record.
type EntryState = core.EntryState

// RestoreReport summarizes what a Sharded.Restore did: how many records
// came back resident or retained, what was demoted or dropped by a
// capacity/policy change, and whether the admission θ survived.
type RestoreReport = shard.RestoreReport

// Snapshotter persists a Sharded cache to a file on a schedule and on
// demand, with atomic replace; obtain one from Sharded.NewSnapshotter.
type Snapshotter = shard.Snapshotter

// SnapshotInfo describes one completed snapshot write.
type SnapshotInfo = shard.SnapshotInfo

// ErrSnapshotInFlight reports that Snapshotter.TrySnapshot found another
// snapshot write already in progress; request-scoped callers should back
// off and retry rather than queue.
var ErrSnapshotInFlight = shard.ErrSnapshotInFlight

// TunerState is the exportable state of an AdmissionTuner: the published
// θ, per-candidate smoothed scores, and the buffered profile windows.
type TunerState = admission.TunerState

// WriteSnapshot encodes a snapshot in the WMSNAP binary format (versioned
// magic, CRC-checked sections).
func WriteSnapshot(w io.Writer, snap *Snapshot) error { return persist.Write(w, snap) }

// ReadSnapshot decodes a WMSNAP snapshot, verifying magic, version and
// every section checksum. It returns persist.ErrBadMagic,
// persist.ErrBadVersion or persist.ErrCorrupt on hostile input, never
// partially decoded state.
func ReadSnapshot(r io.Reader) (*Snapshot, error) { return persist.Read(r) }

// Item is one retrieved set in the §2.3 offline model.
type Item = core.Item

// LNCStar runs the offline greedy LNC* algorithm of §2.3: sort by
// pᵢ·cᵢ/sᵢ descending and fill the cache. Returns the selected index set.
func LNCStar(items []Item, capacity int64) map[int]bool {
	return core.LNCStar(items, capacity)
}

// ExpectedCostSavings returns the steady-state cost savings ratio of a
// static cache content under the §2.3 model.
func ExpectedCostSavings(items []Item, cached map[int]bool) float64 {
	return core.ExpectedCostSavings(items, cached)
}
