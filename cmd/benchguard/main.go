// Command benchguard is the CI benchmark regression gate. It reads two
// `go test -json` benchmark logs — a committed baseline and a fresh
// candidate — extracts the refs/s metric of every benchmark whose name
// contains the filter substring, and fails when the candidate's
// throughput regresses past the allowed fraction of the baseline.
//
// Usage:
//
//	go run ./cmd/benchguard -baseline BENCH_shard_baseline.json \
//	    -candidate BENCH_shard.json -filter load=snapshots -max-regress 0.30
//
// Benchmarks appearing more than once (a -count > 1 run) are compared by
// their best observation on each side, so scheduler noise in a single
// iteration cannot fail the gate. A filtered benchmark present in the
// baseline but absent from the candidate is an error: a silently dropped
// cell must not pass as "no regression".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "", "baseline `file` (go test -json output)")
	candidate := flag.String("candidate", "", "candidate `file` (go test -json output)")
	filter := flag.String("filter", "", "only gate benchmarks whose name contains this `substring`")
	maxRegress := flag.Float64("max-regress", 0.30, "allowed throughput loss as a `fraction` of baseline")
	flag.Parse()
	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -candidate are required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := loadRefsPerSec(*baseline)
	if err != nil {
		fatal(err)
	}
	cand, err := loadRefsPerSec(*candidate)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if strings.Contains(name, *filter) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("baseline %s has no refs/s benchmarks matching %q", *baseline, *filter))
	}

	failed := false
	for _, name := range names {
		b := best(base[name])
		got, ok := cand[name]
		if !ok {
			fmt.Printf("FAIL %s: present in baseline (%.0f refs/s) but missing from candidate\n", name, b)
			failed = true
			continue
		}
		c := best(got)
		floor := b * (1 - *maxRegress)
		verdict := "ok  "
		if c < floor {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: baseline %.0f refs/s, candidate %.0f refs/s (floor %.0f)\n",
			verdict, name, b, c, floor)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

func best(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// loadRefsPerSec collects every refs/s observation per benchmark name
// from one `go test -json` log. The JSON events split output on line
// boundaries but can also split a single benchmark result line across
// events, so the Output payloads are reassembled into a text stream
// before line-level parsing.
func loadRefsPerSec(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a go test -json log: %w", path, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make(map[string][]float64)
	for _, line := range strings.Split(text.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i, fld := range fields {
			if fld != "refs/s" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad refs/s value on %q: %w", path, line, err)
			}
			out[fields[0]] = append(out[fields[0]], v)
			break
		}
	}
	return out, nil
}
