// Command benchguard is the CI benchmark regression gate. It reads two
// benchmark logs — a committed baseline and a fresh candidate — extracts
// the refs/s metric of every benchmark whose name contains the filter
// substring, and fails when the candidate's throughput regresses past
// the allowed fraction of the baseline.
//
// Usage:
//
//	go run ./cmd/benchguard -baseline BENCH_shard_baseline.json \
//	    -candidate BENCH_shard.json -filter load=snapshots -max-regress 0.30
//
// Either side may be a raw `go test -json` log or the compact summary
// this command itself produces:
//
//	go run ./cmd/benchguard -summarize -in BENCH_shard.json -o BENCH_summary.json
//
// The summary collapses a multi-megabyte event log into one small JSON
// object (benchmark name → ns/op, allocs/op, refs/s, hit-ratio, ...),
// suitable for committing as a baseline or attaching as a CI artifact
// humans can actually read. The two formats are distinguished by the
// summary's "format" marker, so gate invocations need no flag to say
// which kind each file is.
//
// Benchmarks appearing more than once (a -count > 1 run) are compared by
// their best observation on each side, so scheduler noise in a single
// iteration cannot fail the gate. A filtered benchmark present in the
// baseline but absent from the candidate is an error: a silently dropped
// cell must not pass as "no regression".
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "", "baseline `file` (go test -json output or benchguard summary)")
	candidate := flag.String("candidate", "", "candidate `file` (go test -json output or benchguard summary)")
	filter := flag.String("filter", "", "only gate benchmarks whose name contains this `substring`")
	maxRegress := flag.Float64("max-regress", 0.30, "allowed throughput loss as a `fraction` of baseline")
	summarize := flag.Bool("summarize", false, "summarize mode: condense one go test -json log into the compact summary format instead of gating")
	in := flag.String("in", "", "summarize: input `file` (go test -json output)")
	out := flag.String("o", "", "summarize: output `file` (default stdout)")
	flag.Parse()

	if *summarize {
		if *baseline != "" || *candidate != "" {
			fmt.Fprintln(os.Stderr, "benchguard: -baseline/-candidate have no effect with -summarize")
			os.Exit(2)
		}
		if *in == "" {
			fmt.Fprintln(os.Stderr, "benchguard: -summarize requires -in")
			flag.Usage()
			os.Exit(2)
		}
		if err := runSummarize(*in, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *in != "" || *out != "" {
		fmt.Fprintln(os.Stderr, "benchguard: -in/-o need -summarize")
		os.Exit(2)
	}
	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -candidate are required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := loadRefsPerSec(*baseline)
	if err != nil {
		fatal(err)
	}
	cand, err := loadRefsPerSec(*candidate)
	if err != nil {
		fatal(err)
	}

	report, failed := gate(base, cand, *filter, *maxRegress)
	if report == "" {
		fatal(fmt.Errorf("baseline %s has no refs/s benchmarks matching %q", *baseline, *filter))
	}
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

// gate compares the filtered baseline benchmarks against the candidate
// and renders the verdict lines. An empty report means the filter
// matched nothing in the baseline.
func gate(base, cand map[string][]float64, filter string, maxRegress float64) (report string, failed bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		if strings.Contains(name, filter) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, name := range names {
		b := best(base[name])
		got, ok := cand[name]
		if !ok {
			fmt.Fprintf(&sb, "FAIL %s: present in baseline (%.0f refs/s) but missing from candidate\n", name, b)
			failed = true
			continue
		}
		c := best(got)
		floor := b * (1 - maxRegress)
		verdict := "ok  "
		if c < floor {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(&sb, "%s %s: baseline %.0f refs/s, candidate %.0f refs/s (floor %.0f)\n",
			verdict, name, b, c, floor)
	}
	return sb.String(), failed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

func best(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// summaryFormat marks a benchguard summary file; the loader keys format
// detection on it, so it must change if the schema ever does.
const summaryFormat = "benchguard-summary/v1"

// benchCell is one benchmark's condensed result across every
// observation of its name in the source log.
type benchCell struct {
	// Count is how many observations (-count runs) were merged.
	Count int `json:"count"`
	// NsPerOp is the best (lowest) ns/op observation.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// AllocsPerOp and BytesPerOp are the worst (highest) observations,
	// so a zero here really means zero allocations in every run.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Metrics holds the best (highest) observation of each custom
	// b.ReportMetric unit: refs/s, hit-ratio, θ, ...
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchSummary is the compact file format: a format marker plus one
// cell per benchmark name.
type benchSummary struct {
	Format     string                `json:"format"`
	Benchmarks map[string]*benchCell `json:"benchmarks"`
}

// runSummarize condenses one raw go test -json log into the summary
// format, written to path out (stdout when empty).
func runSummarize(in, out string) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if _, ok := decodeSummary(data); ok {
		return fmt.Errorf("%s is already a benchguard summary", in)
	}
	obs, err := parseRawLog(in, data)
	if err != nil {
		return err
	}
	sum := summarize(obs)
	if len(sum.Benchmarks) == 0 {
		return fmt.Errorf("%s has no benchmark result lines", in)
	}
	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// summarize merges raw observations into cells, best-per-side: lowest
// ns/op, highest custom metrics, highest (worst) allocation counters.
func summarize(obs []observation) benchSummary {
	sum := benchSummary{Format: summaryFormat, Benchmarks: make(map[string]*benchCell)}
	for _, o := range obs {
		c := sum.Benchmarks[o.name]
		if c == nil {
			c = &benchCell{Metrics: make(map[string]float64)}
			sum.Benchmarks[o.name] = c
		}
		c.Count++
		for unit, v := range o.values {
			switch unit {
			case "ns/op":
				if c.Count == 1 || v < c.NsPerOp {
					c.NsPerOp = v
				}
			case "allocs/op":
				c.AllocsPerOp = max(c.AllocsPerOp, v)
			case "B/op":
				c.BytesPerOp = max(c.BytesPerOp, v)
			default:
				if prev, ok := c.Metrics[unit]; !ok || v > prev {
					c.Metrics[unit] = v
				}
			}
		}
	}
	for _, c := range sum.Benchmarks {
		if len(c.Metrics) == 0 {
			c.Metrics = nil
		}
	}
	return sum
}

// decodeSummary reports whether data is a benchguard summary file.
func decodeSummary(data []byte) (benchSummary, bool) {
	var sum benchSummary
	if err := json.Unmarshal(data, &sum); err != nil || sum.Format != summaryFormat {
		return benchSummary{}, false
	}
	return sum, true
}

// observation is one raw benchmark result line: name plus each
// "value unit" pair on it.
type observation struct {
	name   string
	values map[string]float64
}

// loadRefsPerSec collects every refs/s observation per benchmark name
// from one file in either format.
func loadRefsPerSec(path string) (map[string][]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64)
	if sum, ok := decodeSummary(data); ok {
		for name, c := range sum.Benchmarks {
			if v, ok := c.Metrics["refs/s"]; ok {
				out[name] = append(out[name], v)
			}
		}
		return out, nil
	}
	obs, err := parseRawLog(path, data)
	if err != nil {
		return nil, err
	}
	for _, o := range obs {
		if v, ok := o.values["refs/s"]; ok {
			out[o.name] = append(out[o.name], v)
		}
	}
	return out, nil
}

// parseRawLog parses a `go test -json` log into benchmark observations.
// The JSON events split output on line boundaries but can also split a
// single benchmark result line across events, so the Output payloads
// are reassembled into a text stream before line-level parsing.
func parseRawLog(path string, data []byte) ([]observation, error) {
	var text strings.Builder
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a go test -json log: %w", path, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	var out []observation
	for _, line := range strings.Split(text.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		o := observation{name: fields[0], values: make(map[string]float64, (len(fields)-2)/2)}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			o.values[fields[i+1]] = v
		}
		if ok {
			out = append(out, o)
		}
	}
	return out, nil
}
