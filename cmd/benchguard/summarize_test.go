package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTemp drops content into a fresh temp file and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSummarizeEmptyInput pins the empty-log edge cases: a zero-byte
// file and a well-formed go test -json stream with no benchmark result
// lines must both fail loudly — an empty summary silently committed as a
// baseline would turn the regression gate into a no-op.
func TestSummarizeEmptyInput(t *testing.T) {
	empty := writeTemp(t, "empty.json", "")
	if err := runSummarize(empty, filepath.Join(t.TempDir(), "out.json")); err == nil {
		t.Fatal("summarizing an empty file must error")
	} else if !strings.Contains(err.Error(), "no benchmark result lines") {
		t.Fatalf("error must say what was missing, got: %v", err)
	}

	noBench := writeTemp(t, "nobench.json",
		`{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"ok  \trepro\t0.5s\n"}
`)
	if err := runSummarize(noBench, ""); err == nil || !strings.Contains(err.Error(), "no benchmark result lines") {
		t.Fatalf("a log without benchmarks must error, got: %v", err)
	}

	// Not a go test -json stream at all: the parser must identify the
	// file rather than produce an empty summary.
	garbage := writeTemp(t, "garbage.json", "BenchmarkFoo 100 10 ns/op\n")
	if err := runSummarize(garbage, ""); err == nil || !strings.Contains(err.Error(), "not a go test -json log") {
		t.Fatalf("plain bench text is not a -json log, got: %v", err)
	}
}

// TestGateRawBaselineSummaryCandidate gates the format mix the bench job
// does not exercise (raw baseline, summarized candidate): detection is
// per-file, so either side may be either format.
func TestGateRawBaselineSummaryCandidate(t *testing.T) {
	raw := writeTemp(t, "raw.json", rawLog)
	compact := filepath.Join(t.TempDir(), "summary.json")
	if err := runSummarize(raw, compact); err != nil {
		t.Fatal(err)
	}
	base, err := loadRefsPerSec(raw)
	if err != nil {
		t.Fatal(err)
	}
	cand, err := loadRefsPerSec(compact)
	if err != nil {
		t.Fatal(err)
	}
	report, failed := gate(base, cand, "", 0.30)
	if failed {
		t.Fatalf("summary of the same log must pass against its raw source:\n%s", report)
	}
	// The summary keeps only the best observation; the gate must have
	// compared best-vs-best, not best-vs-first.
	if !strings.Contains(report, "baseline 900000 refs/s, candidate 900000 refs/s") {
		t.Fatalf("expected best-vs-best comparison in report:\n%s", report)
	}
}

// TestGateMetricOnOneSide pins the one-sided cells: a benchmark whose
// refs/s exists only in the baseline must FAIL (a silently dropped cell
// is not "no regression"), one that exists only in the candidate is
// outside the gate, and a baseline filter that matches nothing is
// reported as an empty verdict for main to reject.
func TestGateMetricOnOneSide(t *testing.T) {
	base := map[string][]float64{
		"BenchmarkShardedReference/whatif=off-8": {800000},
		"BenchmarkOnlyInBaseline":                {500000},
	}
	cand := map[string][]float64{
		"BenchmarkShardedReference/whatif=off-8": {790000},
		"BenchmarkOnlyInCandidate":               {100},
	}

	report, failed := gate(base, cand, "", 0.30)
	if !failed {
		t.Fatalf("baseline-only benchmark must fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkOnlyInBaseline") || !strings.Contains(report, "missing from candidate") {
		t.Fatalf("verdict must name the dropped cell:\n%s", report)
	}
	if strings.Contains(report, "BenchmarkOnlyInCandidate") {
		t.Fatalf("candidate-only benchmarks are not gated:\n%s", report)
	}

	// A benchmark that lost its refs/s metric (e.g. the custom metric was
	// renamed) disappears from loadRefsPerSec's map and must surface as a
	// dropped cell, not a pass.
	lost := writeTemp(t, "lost.json",
		`{"Action":"output","Package":"repro","Output":"BenchmarkOnlyInBaseline \t 100\t 10 ns/op\t 0 allocs/op\n"}
`)
	candLost, err := loadRefsPerSec(lost)
	if err != nil {
		t.Fatal(err)
	}
	report, failed = gate(map[string][]float64{"BenchmarkOnlyInBaseline": {500000}}, candLost, "", 0.30)
	if !failed || !strings.Contains(report, "missing from candidate") {
		t.Fatalf("metric lost on one side must fail:\n%s", report)
	}

	// Filter matching nothing: empty report, which main treats as a
	// configuration error.
	report, failed = gate(base, cand, "no-such-benchmark", 0.30)
	if report != "" || failed {
		t.Fatalf("unmatched filter must yield an empty, non-failing report, got failed=%v:\n%s", failed, report)
	}
}
