package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadRefsPerSec pins the test2json parsing: output events can split
// one benchmark result line mid-way, -count > 1 yields repeated names,
// and lines without a refs/s metric are ignored.
func TestLoadRefsPerSec(t *testing.T) {
	log := `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked     "}
{"Action":"output","Package":"repro","Output":"\t   35818\t     33422 ns/op\t        0.99 hit-ratio\t     29920 refs/s\t     129 B/op\t       1 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked-8 \t  100\t 10 ns/op\t 8000000 refs/s\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked-8 \t  100\t 12 ns/op\t 7000000 refs/s\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkSnapshotWrite \t 100\t 50000 ns/op\t 120 MB/s\n"}
{"Action":"run","Package":"repro"}
`
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadRefsPerSec(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	split := got["BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked"]
	if len(split) != 1 || split[0] != 29920 {
		t.Fatalf("split-line benchmark = %v, want [29920]", split)
	}
	repeated := got["BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked-8"]
	if len(repeated) != 2 || best(repeated) != 8000000 {
		t.Fatalf("repeated benchmark = %v, want best 8000000", repeated)
	}
	if _, ok := got["BenchmarkSnapshotWrite"]; ok {
		t.Fatal("a benchmark without refs/s must be ignored")
	}
}
