package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadRefsPerSec pins the test2json parsing: output events can split
// one benchmark result line mid-way, -count > 1 yields repeated names,
// and lines without a refs/s metric are ignored.
func TestLoadRefsPerSec(t *testing.T) {
	log := `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked     "}
{"Action":"output","Package":"repro","Output":"\t   35818\t     33422 ns/op\t        0.99 hit-ratio\t     29920 refs/s\t     129 B/op\t       1 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked-8 \t  100\t 10 ns/op\t 8000000 refs/s\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked-8 \t  100\t 12 ns/op\t 7000000 refs/s\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkSnapshotWrite \t 100\t 50000 ns/op\t 120 MB/s\n"}
{"Action":"run","Package":"repro"}
`
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadRefsPerSec(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	split := got["BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked"]
	if len(split) != 1 || split[0] != 29920 {
		t.Fatalf("split-line benchmark = %v, want [29920]", split)
	}
	repeated := got["BenchmarkShardedReferenceBuffered/load=snapshots/mode=locked-8"]
	if len(repeated) != 2 || best(repeated) != 8000000 {
		t.Fatalf("repeated benchmark = %v, want best 8000000", repeated)
	}
	if _, ok := got["BenchmarkSnapshotWrite"]; ok {
		t.Fatal("a benchmark without refs/s must be ignored")
	}
}

// rawLog is a synthetic two-benchmark go test -json log with a -count 2
// repeat, allocation counters, and custom metrics.
const rawLog = `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"BenchmarkShardedReference/whatif=off-8 \t 1000\t 120 ns/op\t 0.95 hit-ratio\t 800000 refs/s\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkShardedReference/whatif=off-8 \t 1000\t 110 ns/op\t 0.95 hit-ratio\t 900000 refs/s\t 16 B/op\t 1 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkShardedReference/whatif=on-8 \t 1000\t 130 ns/op\t 0.94 hit-ratio\t 760000 refs/s\t 0 B/op\t 0 allocs/op\n"}
`

// TestSummarizeRoundTrip pins the compact format: summarize a raw log,
// reload the summary, and check the gate sees the same refs/s numbers
// through either file.
func TestSummarizeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.json")
	if err := os.WriteFile(raw, []byte(rawLog), 0o644); err != nil {
		t.Fatal(err)
	}
	compact := filepath.Join(dir, "summary.json")
	if err := runSummarize(raw, compact); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(compact)
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := decodeSummary(data)
	if !ok {
		t.Fatalf("summary output not detected as summary format: %s", data)
	}
	off := sum.Benchmarks["BenchmarkShardedReference/whatif=off-8"]
	if off == nil {
		t.Fatalf("missing cell; have %v", sum.Benchmarks)
	}
	if off.Count != 2 || off.NsPerOp != 110 || off.AllocsPerOp != 1 || off.BytesPerOp != 16 {
		t.Fatalf("merged cell = %+v, want count 2, best ns/op 110, worst allocs 1 / 16 B", off)
	}
	if off.Metrics["refs/s"] != 900000 || off.Metrics["hit-ratio"] != 0.95 {
		t.Fatalf("merged metrics = %v", off.Metrics)
	}

	fromRaw, err := loadRefsPerSec(raw)
	if err != nil {
		t.Fatal(err)
	}
	fromSum, err := loadRefsPerSec(compact)
	if err != nil {
		t.Fatal(err)
	}
	for name := range fromRaw {
		if best(fromRaw[name]) != best(fromSum[name]) {
			t.Fatalf("%s: raw best %v != summary best %v", name, fromRaw[name], fromSum[name])
		}
	}

	// A summary must refuse to be re-summarized rather than nest.
	if err := runSummarize(compact, filepath.Join(dir, "twice.json")); err == nil {
		t.Fatal("summarizing a summary must error")
	}
}

// TestGateAcrossFormats gates a raw candidate against a summarized
// baseline and checks both the pass and the regression verdicts.
func TestGateAcrossFormats(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.json")
	if err := os.WriteFile(raw, []byte(rawLog), 0o644); err != nil {
		t.Fatal(err)
	}
	compact := filepath.Join(dir, "summary.json")
	if err := runSummarize(raw, compact); err != nil {
		t.Fatal(err)
	}
	base, err := loadRefsPerSec(compact)
	if err != nil {
		t.Fatal(err)
	}
	cand, err := loadRefsPerSec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if report, failed := gate(base, cand, "whatif", 0.30); failed {
		t.Fatalf("identical sides must pass:\n%s", report)
	}
	cand["BenchmarkShardedReference/whatif=on-8"] = []float64{100000}
	report, failed := gate(base, cand, "whatif", 0.30)
	if !failed {
		t.Fatalf("8x regression must fail:\n%s", report)
	}
}
