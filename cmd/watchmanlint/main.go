// Command watchmanlint runs the repository's static-analysis suite — the
// custom analyzers in internal/analysis that mechanize the codebase's
// concurrency, accounting and hot-path contracts — over a package
// pattern and fails when any invariant is violated. It is a hard CI
// gate, not an advisory: the lint job runs exactly this binary.
//
// Usage:
//
//	go run ./cmd/watchmanlint ./...
//	go run ./cmd/watchmanlint -json ./internal/shard
//	go run ./cmd/watchmanlint -list
//
// Patterns follow the go tool's shape ("./...", "./internal/...", one
// directory); no pattern means the whole module. -json emits one JSON
// array of findings for CI annotation tooling; -list prints the
// registered analyzers and their one-paragraph docs. Suppressions use
// `//lint:ignore <analyzer> <justification>` on the offending line or
// the line above; the justification is mandatory. Exit status: 0 clean,
// 1 findings, 2 usage or load errors.
//
// The analyzers, their invariants and the annotation vocabulary are
// documented in docs/ANALYSIS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (for CI annotation)")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	dir := flag.String("C", ".", "module root `directory` to analyze")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := analysis.LoadModule(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "watchmanlint:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "watchmanlint: no packages matched")
		os.Exit(2)
	}
	diags, err := analysis.RunAll(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "watchmanlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "watchmanlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "watchmanlint: %d package(s), %d finding(s)\n", len(pkgs), len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// jsonFinding is the -json wire form of one diagnostic: flat fields so CI
// annotators need no nested unpacking.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// writeJSON renders the findings as one indented JSON array ([] when
// clean, so consumers can always parse the output).
func writeJSON(w *os.File, diags []analysis.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			Analyzer: d.Analyzer,
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
