// Command doccheck is the repository's documentation linter, run by the CI
// docs job. It enforces three invariants without external dependencies:
//
//  1. every exported identifier (functions, methods, types, consts, vars)
//     in every non-test Go file carries a doc comment, and every package
//     has a package-level doc comment — the revive/golint "exported" rule;
//  2. every relative markdown link in README.md and docs/*.md resolves to
//     a file that exists;
//  3. every analyzer registered in the static-analysis suite (the list
//     cmd/watchmanlint runs) is documented under a `## <name>` heading in
//     docs/ANALYSIS.md, and no heading there names an analyzer that no
//     longer exists.
//
// Usage:
//
//	go run ./cmd/doccheck [dir]
//
// dir defaults to the current directory (the module root). doccheck prints
// one line per violation and exits non-zero if it found any.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkGoDocs(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	problems = append(problems, checkAnalyzerDocs(root)...)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// checkGoDocs walks every non-test Go file under root and reports exported
// identifiers without doc comments and packages without a package comment.
func checkGoDocs(root string) []string {
	var problems []string
	// pkgDoc maps a directory to whether any of its files carries a
	// package doc comment; pkgSeen records the position to report.
	pkgDoc := map[string]bool{}
	pkgFirst := map[string]string{}

	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: parse error: %v", path, err))
			return nil
		}
		dir := filepath.Dir(path)
		if f.Doc != nil {
			pkgDoc[dir] = true
		} else if _, ok := pkgDoc[dir]; !ok {
			pkgDoc[dir] = false
		}
		if _, ok := pkgFirst[dir]; !ok {
			pkgFirst[dir] = path
		}
		problems = append(problems, checkFileDecls(fset, path, f)...)
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walk: %v", err))
	}
	for dir, ok := range pkgDoc {
		if !ok {
			problems = append(problems,
				fmt.Sprintf("%s: package has no package-level doc comment in any file", pkgFirst[dir]))
		}
	}
	return problems
}

// checkFileDecls reports exported top-level declarations in one file that
// lack doc comments.
func checkFileDecls(fset *token.FileSet, path string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", path, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods count only when their receiver type is exported.
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped declaration or on the
					// spec (or a trailing line comment) covers its names.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// mdLink matches inline markdown links; the path group stops before any
// anchor or title.
var mdLink = regexp.MustCompile(`\]\(([^)\s#]+)[^)]*\)`)

// checkMarkdownLinks verifies every relative link in README.md and every
// markdown file under docs/ points at an existing file.
func checkMarkdownLinks(root string) []string {
	var files []string
	if _, err := os.Stat(filepath.Join(root, "README.md")); err == nil {
		files = append(files, filepath.Join(root, "README.md"))
	}
	docs, _ := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	files = append(files, docs...)

	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue // external
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems,
						fmt.Sprintf("%s:%d: broken link %q (no file at %s)", file, i+1, target, resolved))
				}
			}
		}
	}
	return problems
}

// analyzerHeading matches a `## <name>` heading whose name has the shape
// of an analyzer (one lower-case word); prose headings like
// "## Annotation vocabulary" do not match.
var analyzerHeading = regexp.MustCompile(`^## ([a-z][a-z0-9]*)$`)

// checkAnalyzerDocs verifies docs/ANALYSIS.md against the registered
// analyzer suite: every analyzer in analysis.All must have a `## <name>`
// section, and every analyzer-shaped heading must name a registered
// analyzer (a stale section is as misleading as a missing one).
func checkAnalyzerDocs(root string) []string {
	path := filepath.Join(root, "docs", "ANALYSIS.md")
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v (every registered analyzer must be documented there)", path, err)}
	}
	var names []string
	for _, a := range analysis.All() {
		names = append(names, a.Name)
	}
	return analyzerDocProblems(path, string(data), names)
}

// analyzerDocProblems is the testable core of checkAnalyzerDocs: it
// diffs the analyzer-shaped headings of the document against the
// registered names.
func analyzerDocProblems(path, content string, names []string) []string {
	documented := map[string]int{}
	for i, line := range strings.Split(content, "\n") {
		if m := analyzerHeading.FindStringSubmatch(strings.TrimRight(line, " \t")); m != nil {
			documented[m[1]] = i + 1
		}
	}
	var problems []string
	registered := map[string]bool{}
	for _, name := range names {
		registered[name] = true
		if _, ok := documented[name]; !ok {
			problems = append(problems,
				fmt.Sprintf("%s: analyzer %q is registered in the suite but has no \"## %s\" section", path, name, name))
		}
	}
	for name, line := range documented {
		if !registered[name] {
			problems = append(problems,
				fmt.Sprintf("%s:%d: heading \"## %s\" documents an analyzer that is not registered", path, line, name))
		}
	}
	return problems
}
