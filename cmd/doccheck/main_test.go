package main

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestAnalyzerDocProblems pins the ANALYSIS.md ↔ registry diff in both
// directions: a registered analyzer without a section and a section
// without a registered analyzer are each one problem, and prose headings
// never count as analyzer sections.
func TestAnalyzerDocProblems(t *testing.T) {
	names := []string{"accounthonesty", "timesource"}

	complete := "# Static analysis\n\n## Annotation vocabulary\n\nprose\n\n" +
		"## accounthonesty\n\ntext\n\n## timesource\n\ntext\n"
	if got := analyzerDocProblems("docs/ANALYSIS.md", complete, names); len(got) != 0 {
		t.Fatalf("complete doc must pass, got %v", got)
	}

	missing := "## accounthonesty\n"
	got := analyzerDocProblems("docs/ANALYSIS.md", missing, names)
	if len(got) != 1 || !strings.Contains(got[0], `"## timesource"`) {
		t.Fatalf("missing section must be exactly one problem naming it, got %v", got)
	}

	stale := complete + "\n## lockencode\n\nghost of a removed analyzer\n"
	got = analyzerDocProblems("docs/ANALYSIS.md", stale, names)
	if len(got) != 1 || !strings.Contains(got[0], "not registered") {
		t.Fatalf("stale section must be exactly one problem, got %v", got)
	}

	// A heading with prose shape must not be mistaken for an analyzer.
	prose := complete + "\n## Adding an analyzer\n"
	if got := analyzerDocProblems("docs/ANALYSIS.md", prose, names); len(got) != 0 {
		t.Fatalf("prose headings must not count, got %v", got)
	}
}

// TestAnalyzerDocsAgainstRepo runs the real check against the real
// document from the module root, so the test fails the moment an
// analyzer is added without documentation.
func TestAnalyzerDocsAgainstRepo(t *testing.T) {
	if got := checkAnalyzerDocs("../.."); len(got) != 0 {
		t.Fatalf("docs/ANALYSIS.md out of sync with analysis.All(): %v", got)
	}
	if len(analysis.All()) == 0 {
		t.Fatal("registry is empty; the check would be vacuous")
	}
}
