package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]core.PolicyKind{
		"lru": core.LRU, "LRU": core.LRU,
		"lru-k": core.LRUK, "lruk": core.LRUK,
		"lfu": core.LFU, "lcs": core.LCS,
		"lnc-r": core.LNCR, "lncr": core.LNCR,
		"lnc-ra": core.LNCRA, "LNC-RA": core.LNCRA,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePolicy("unknown"); err == nil {
		t.Error("unknown policy must error")
	}
}

func TestGenerateTraceBenchmarks(t *testing.T) {
	for _, b := range []string{"tpcd", "setquery", "multiclass"} {
		tr, err := generateTrace(b, 200, 1, 0.005)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if tr.Len() != 200 {
			t.Fatalf("%s: %d records", b, tr.Len())
		}
	}
	if _, err := generateTrace("nope", 10, 1, 0); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestTraceFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"bin", "csv"} {
		path := filepath.Join(dir, "t."+format)
		if err := cmdTrace([]string{"-benchmark", "tpcd", "-queries", "150", "-seed", "2", "-scale", "0.005", "-o", path, "-format", format}); err != nil {
			t.Fatalf("cmdTrace(%s): %v", format, err)
		}
		tr, err := loadTrace(path)
		if err != nil {
			t.Fatalf("loadTrace(%s): %v", format, err)
		}
		if tr.Len() != 150 {
			t.Fatalf("%s: %d records", format, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrace(path); err == nil {
		t.Fatal("garbage file must fail to load")
	}
}

func TestCmdTraceRequiresOutput(t *testing.T) {
	if err := cmdTrace([]string{"-benchmark", "tpcd"}); err == nil {
		t.Fatal("missing -o must error")
	}
}
