package main

// The policy-comparison experiment harness: `watchman compare` replays one
// trace across a set of cache policies — including the shadow-tuned
// adaptive admitter — and emits a cost-savings-ratio table, the repo's
// first cross-policy, cross-workload evaluation surface.

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// defaultComparePolicies is the policy lineup compared by default: the
// paper's flagship against its adaptive extension and the two classic
// baselines.
const defaultComparePolicies = "lnc-ra,lnc-ra-adaptive,lru,lru-k"

// compareRow is one policy's replay outcome within a comparison.
type compareRow struct {
	label    string
	stats    core.Stats
	classes  []telemetry.ClassSnapshot // per-class breakdown from the attached registry
	adaptive *sim.AdaptiveResult       // nil for static policies
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	in := fs.String("i", "", "trace file (default: generate -benchmark in-process)")
	benchmark := fs.String("benchmark", "tpcd", "workload when generating in-process: tpcd, setquery, multiclass or drilldown")
	queries := fs.Int("queries", 17000, "queries when generating in-process")
	seed := fs.Int64("seed", 1, "seed when generating in-process")
	scale := fs.Float64("scale", 0, "database scale when generating in-process (0 = paper default)")
	policies := fs.String("policies", defaultComparePolicies,
		"comma-separated policies to compare (lnc-ra-adaptive selects the shadow-tuned admitter; lnc-ra-derive enables semantic derivation and needs a trace with plan descriptors)")
	k := fs.Int("k", 4, "reference-window size K")
	cachePct := fs.Float64("cache-pct", 1, "cache size as % of database size")
	cacheBytes := fs.Int64("cache-bytes", 0, "cache size in bytes (overrides -cache-pct)")
	window := fs.Int("window", admission.DefaultWindow, "adaptive tuner: references per tuning round")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tr *trace.Trace
	var err error
	if *in != "" {
		tr, err = loadTrace(*in)
	} else {
		tr, err = generateTrace(*benchmark, *queries, *seed, *scale)
	}
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	capacity := *cacheBytes
	if capacity <= 0 {
		capacity = sim.CacheBytesForFraction(tr, *cachePct)
	}

	var rows []compareRow
	for _, name := range strings.Split(*policies, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		row, err := compareOne(tr, name, capacity, *k, *window)
		if err != nil {
			return fmt.Errorf("compare: %w", err)
		}
		rows = append(rows, row)
	}

	// Multiclass traces get one CSR column per workload class, read off
	// each replay's telemetry registry.
	numClasses := 0
	for _, r := range rows {
		if n := len(r.classes); n > numClasses {
			numClasses = n
		}
	}
	cols := []string{"policy", "cost savings"}
	if numClasses > 1 {
		for c := 0; c < numClasses; c++ {
			cols = append(cols, fmt.Sprintf("class%d CSR", c))
		}
	}
	cols = append(cols, "hit ratio", "derived", "admissions", "rejections", "evictions")
	t := metrics.NewTable(
		fmt.Sprintf("policy comparison on %s, cache %s, K=%d", tr.Name, metrics.Bytes(capacity), *k),
		cols...)
	for _, r := range rows {
		cells := []string{r.label, metrics.Ratio(r.stats.CostSavingsRatio())}
		if numClasses > 1 {
			for c := 0; c < numClasses; c++ {
				if c < len(r.classes) {
					cells = append(cells, metrics.Ratio(r.classes[c].CSR()))
				} else {
					cells = append(cells, "-")
				}
			}
		}
		cells = append(cells,
			metrics.Ratio(r.stats.HitRatio()),
			fmt.Sprint(r.stats.DerivedHits),
			fmt.Sprint(r.stats.Admissions),
			fmt.Sprint(r.stats.Rejections),
			fmt.Sprint(r.stats.Evictions))
		t.AddRow(cells...)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	for _, r := range rows {
		if r.adaptive != nil {
			fmt.Printf("\nadaptive admitter: final θ=%g after %d tuning rounds (%d parameter switches), window %d refs\n",
				r.adaptive.FinalThreshold, r.adaptive.Rounds, r.adaptive.Switches, *window)
		}
	}
	return nil
}

// compareOne replays the trace under one named policy with a telemetry
// registry attached for the per-class breakdown. The name
// "lnc-ra-adaptive" (or "adaptive") selects the shadow-tuned admitter and
// "lnc-ra-derive" (or "derive") the semantic derivation subsystem;
// everything else resolves through parsePolicy.
func compareOne(tr *trace.Trace, name string, capacity int64, k, window int) (compareRow, error) {
	reg := telemetry.NewRegistry()
	switch strings.ToLower(name) {
	case "lnc-ra-adaptive", "lncra-adaptive", "adaptive":
		res, _, err := sim.ReplayAdaptive(tr,
			core.Config{Capacity: capacity, K: k, Sink: reg},
			admission.Config{Window: window})
		if err != nil {
			return compareRow{}, err
		}
		return compareRow{label: res.Policy, stats: res.Stats, classes: reg.Snapshot().Classes, adaptive: &res}, nil
	case "lnc-ra-derive", "lncra-derive", "derive":
		if !tr.HasPlans() {
			return compareRow{}, fmt.Errorf(
				"policy %s needs plan descriptors, but trace %q carries none: regenerate it with a descriptor-aware workload (e.g. 'watchman trace -benchmark drilldown') or replay a policy without derivation",
				name, tr.Name)
		}
		res, _, _, err := sim.ReplayDerived(tr,
			core.Config{Capacity: capacity, K: k, Policy: core.LNCRA, Sink: reg},
			derive.Config{})
		if err != nil {
			return compareRow{}, err
		}
		return compareRow{label: res.Policy + "+derive", stats: res.Stats, classes: reg.Snapshot().Classes}, nil
	default:
		pk, err := parsePolicy(name)
		if err != nil {
			return compareRow{}, err
		}
		res, _, err := sim.ReplayWithRegistry(tr, core.Config{Capacity: capacity, K: k, Policy: pk}, reg)
		if err != nil {
			return compareRow{}, err
		}
		return compareRow{label: res.Policy, stats: res.Stats, classes: reg.Snapshot().Classes}, nil
	}
}
