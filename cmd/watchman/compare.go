package main

// The policy-comparison experiment harness: `watchman compare` replays one
// trace across a set of cache policies — including the shadow-tuned
// adaptive admitter — and emits a cost-savings-ratio table, the repo's
// first cross-policy, cross-workload evaluation surface.

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/whatif"
)

// defaultComparePolicies is the policy lineup compared by default: the
// paper's flagship against its adaptive extension and the two classic
// baselines.
const defaultComparePolicies = "lnc-ra,lnc-ra-adaptive,lru,lru-k"

// compareRow is one policy's replay outcome within a comparison.
type compareRow struct {
	label    string
	stats    core.Stats
	classes  []telemetry.ClassSnapshot // per-class breakdown from the attached registry
	adaptive *sim.AdaptiveResult       // nil for static policies
	regret   []flight.Regret           // -explain: top regretted rejections
	tracked  int                       // -explain: signatures the tracker followed
}

// regretTopK bounds the -explain regret report per policy.
const regretTopK = 10

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	in := fs.String("i", "", "trace file (default: generate -benchmark in-process)")
	benchmark := fs.String("benchmark", "tpcd", "workload when generating in-process: tpcd, setquery, multiclass or drilldown")
	queries := fs.Int("queries", 17000, "queries when generating in-process")
	seed := fs.Int64("seed", 1, "seed when generating in-process")
	scale := fs.Float64("scale", 0, "database scale when generating in-process (0 = paper default)")
	policies := fs.String("policies", defaultComparePolicies,
		"comma-separated policies to compare (lnc-ra-adaptive selects the shadow-tuned admitter; lnc-ra-derive enables semantic derivation and needs a trace with plan descriptors)")
	k := fs.Int("k", 4, "reference-window size K")
	cachePct := fs.Float64("cache-pct", 1, "cache size as % of database size")
	cacheBytes := fs.Int64("cache-bytes", 0, "cache size in bytes (overrides -cache-pct)")
	window := fs.Int("window", admission.DefaultWindow, "adaptive tuner: references per tuning round")
	restart := fs.Bool("restart", false, "run the warm-vs-cold restart experiment instead: replay half the trace, snapshot + restore through the persist codec, replay the rest, and compare second-half cost savings against the uninterrupted and cold-restart runs (always LNC-RA)")
	explain := fs.Bool("explain", false, "after the comparison table, print each policy's regret report: the top rejected-then-re-referenced signatures ranked by cost forgone, with the last rejection's profit-vs-θ·bar inputs")
	whatifOn := fs.Bool("whatif", false, "run the ghost-matrix experiment instead: one real lnc-ra replay with the sampled what-if grid attached, reporting estimated CSR per (capacity ladder × policy) cell and the advisor verdict")
	whatifSample := fs.Int("whatif-sample", whatif.DefaultSampleRate, "what-if matrix: replay 1 in R references into ghosts scaled by 1/R (needs -whatif)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *restart {
		// The restart experiment replays one fixed policy; reject rather
		// than silently ignore flags that would not shape it (same
		// strictness as serve's -tune-window / -snapshot-interval).
		var ignored []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "policies", "window", "explain", "whatif", "whatif-sample":
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("compare: %s has no effect with -restart (the experiment always replays lnc-ra)",
				strings.Join(ignored, ", "))
		}
	}
	if !*whatifOn {
		var ignored []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "whatif-sample" {
				ignored = append(ignored, "-"+f.Name+" (needs -whatif)")
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("compare: %s", strings.Join(ignored, ", "))
		}
	} else {
		// The ghost matrix carries its own policy grid and event-driven
		// accounting; the per-policy flags of the plain comparison do not
		// shape it.
		var ignored []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "policies", "explain":
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("compare: %s has no effect with -whatif (the ghost matrix runs its own policy grid)",
				strings.Join(ignored, ", "))
		}
	}
	var tr *trace.Trace
	var err error
	if *in != "" {
		tr, err = loadTrace(*in)
	} else {
		tr, err = generateTrace(*benchmark, *queries, *seed, *scale)
	}
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	capacity := *cacheBytes
	if capacity <= 0 {
		capacity = sim.CacheBytesForFraction(tr, *cachePct)
	}
	if *restart {
		return compareRestart(tr, capacity, *k)
	}
	if *whatifOn {
		return compareWhatIf(tr, capacity, *k, *window, *whatifSample)
	}

	var rows []compareRow
	for _, name := range strings.Split(*policies, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		row, err := compareOne(tr, name, capacity, *k, *window, *explain)
		if err != nil {
			return fmt.Errorf("compare: %w", err)
		}
		rows = append(rows, row)
	}

	// Multiclass traces get one CSR column per workload class, read off
	// each replay's telemetry registry.
	numClasses := 0
	for _, r := range rows {
		if n := len(r.classes); n > numClasses {
			numClasses = n
		}
	}
	cols := []string{"policy", "cost savings"}
	if numClasses > 1 {
		for c := 0; c < numClasses; c++ {
			cols = append(cols, fmt.Sprintf("class%d CSR", c))
		}
	}
	cols = append(cols, "hit ratio", "derived", "admissions", "rejections", "evictions")
	t := metrics.NewTable(
		fmt.Sprintf("policy comparison on %s, cache %s, K=%d", tr.Name, metrics.Bytes(capacity), *k),
		cols...)
	for _, r := range rows {
		cells := []string{r.label, metrics.Ratio(r.stats.CostSavingsRatio())}
		if numClasses > 1 {
			for c := 0; c < numClasses; c++ {
				if c < len(r.classes) {
					cells = append(cells, metrics.Ratio(r.classes[c].CSR()))
				} else {
					cells = append(cells, "-")
				}
			}
		}
		cells = append(cells,
			metrics.Ratio(r.stats.HitRatio()),
			fmt.Sprint(r.stats.DerivedHits),
			fmt.Sprint(r.stats.Admissions),
			fmt.Sprint(r.stats.Rejections),
			fmt.Sprint(r.stats.Evictions))
		t.AddRow(cells...)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	for _, r := range rows {
		if r.adaptive != nil {
			fmt.Printf("\nadaptive admitter: final θ=%g after %d tuning rounds (%d parameter switches), window %d refs\n",
				r.adaptive.FinalThreshold, r.adaptive.Rounds, r.adaptive.Switches, *window)
		}
	}
	if *explain {
		for _, r := range rows {
			if err := renderRegret(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderRegret prints one policy's regret report: the signatures whose
// rejection cost the most, with the inequality inputs of the last decided
// rejection so the reader can see how far each one missed the bar.
func renderRegret(r compareRow) error {
	fmt.Println()
	if len(r.regret) == 0 {
		fmt.Printf("regret report: %s rejected nothing that was referenced again (%d signatures tracked)\n",
			r.label, r.tracked)
		return nil
	}
	t := metrics.NewTable(
		fmt.Sprintf("regret report: top %d rejected-then-re-referenced signatures under %s (%d tracked)",
			len(r.regret), r.label, r.tracked),
		"query id", "rejections", "rerefs", "cost forgone", "last profit", "last θ·bar")
	for _, g := range r.regret {
		lastBar := "-"
		lastProfit := "-"
		if g.LastTheta != 0 || g.LastBar != 0 || g.LastProfit != 0 {
			lastProfit = fmt.Sprintf("%.4g", g.LastProfit)
			theta := g.LastTheta
			if theta == 0 {
				theta = 1
			}
			lastBar = fmt.Sprintf("%.4g", theta*g.LastBar)
		}
		t.AddRow(clipID(g.ID, 64),
			fmt.Sprint(g.Rejections),
			fmt.Sprint(g.Rerefs),
			fmt.Sprintf("%.1f", g.CostForgone),
			lastProfit, lastBar)
	}
	return t.Render(os.Stdout)
}

// clipID shortens a compressed query signature for table display; the
// full ID remains queryable via /v1/explain/{id}.
func clipID(id string, max int) string {
	// Compressed IDs join tokens with a control-character separator
	// (core.CompressID); render it as a space so the table stays readable
	// and every byte occupies one display column.
	b := []byte(id)
	for i, c := range b {
		if c < 0x20 {
			b[i] = ' '
		}
	}
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max-3]) + "..."
}

// compareWhatIf runs one real LNC-RA replay with the ghost matrix riding
// its event stream (blocking mode, so nothing is shed) and renders the
// estimated CSR of every (capacity, policy) cell, the sampling coverage
// and the advisor verdict — the offline validation harness for the same
// matrix `serve -whatif` runs live.
func compareWhatIf(tr *trace.Trace, capacity int64, k, window, sampleRate int) error {
	res, rep, err := sim.ReplayWhatIf(tr,
		core.Config{Capacity: capacity, K: k, Policy: core.LNCRA},
		whatif.Config{
			SampleRate: sampleRate,
			TuneWindow: max(admission.MinWindow, window/sampleRate),
		})
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}

	cols := []string{"policy"}
	if len(rep.Curves) > 0 {
		for _, pt := range rep.Curves[0].Points {
			cols = append(cols, fmt.Sprintf("%gx cap", pt.Scale))
		}
	}
	t := metrics.NewTable(
		fmt.Sprintf("what-if ghost matrix on %s, cache %s, K=%d, sampling 1/%d (estimated CSR per modeled capacity)",
			tr.Name, metrics.Bytes(capacity), k, rep.SampleRate),
		cols...)
	for _, cv := range rep.Curves {
		cells := []string{cv.Policy}
		for _, pt := range cv.Points {
			cells = append(cells, metrics.Ratio(pt.CSR))
		}
		t.AddRow(cells...)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nreal replay: %s CSR %s over %d refs; ghosts replayed %d of %d refs (%.1f%% sampled, %d shed)\n",
		res.Policy, metrics.Ratio(res.CSR()), res.Stats.References,
		rep.RefsApplied, rep.RefsSeen, 100*rep.SampledRatio, rep.RefsShed)
	fmt.Printf("advisor (margin %.3f, baseline %s): %s\n", rep.Advisor.Margin, rep.Advisor.BaselinePolicy, rep.Advisor.Reason)
	return nil
}

// compareRestart runs the warm-vs-cold restart experiment and renders its
// second-half accounting: the uninterrupted run is the upper bound, the
// cold restart is what a restart costs without persistence, and the warm
// row shows how much of the gap the snapshot round trip recovers.
func compareRestart(tr *trace.Trace, capacity int64, k int) error {
	res, err := sim.ReplayRestart(tr, core.Config{Capacity: capacity, K: k, Policy: core.LNCRA})
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	t := metrics.NewTable(
		fmt.Sprintf("warm-vs-cold restart on %s (restart after %d of %d queries), cache %s, K=%d",
			tr.Name, res.Split, tr.Len(), metrics.Bytes(capacity), k),
		"run", "2nd-half cost savings", "2nd-half hit ratio", "Δ CSR vs uninterrupted")
	base := res.Uninterrupted.CostSavingsRatio()
	row := func(label string, st core.Stats) {
		t.AddRow(label,
			metrics.Ratio(st.CostSavingsRatio()),
			metrics.Ratio(st.HitRatio()),
			fmt.Sprintf("%+.4f", st.CostSavingsRatio()-base))
	}
	row("uninterrupted", res.Uninterrupted)
	row("warm restart (snapshot+restore)", res.Warm)
	row("cold restart", res.Cold)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nsnapshot: %d resident sets, %s encoded; restored %d resident\n",
		res.SnapshotResident, metrics.Bytes(int64(res.SnapshotBytes)), res.RestoredResident)
	return nil
}

// compareOne replays the trace under one named policy with a telemetry
// registry attached for the per-class breakdown. The name
// "lnc-ra-adaptive" (or "adaptive") selects the shadow-tuned admitter and
// "lnc-ra-derive" (or "derive") the semantic derivation subsystem;
// everything else resolves through parsePolicy.
func compareOne(tr *trace.Trace, name string, capacity int64, k, window int, explain bool) (compareRow, error) {
	reg := telemetry.NewRegistry()
	// With -explain, a regret tracker rides the same event stream as the
	// registry; finish stamps its report onto the finished row.
	var tracker *flight.RegretTracker
	var sink core.EventSink
	if explain {
		tracker = flight.NewRegretTracker(0)
		sink = tracker
	}
	finish := func(row compareRow) compareRow {
		if tracker != nil {
			row.regret = tracker.Top(regretTopK)
			row.tracked = tracker.Tracked()
		}
		return row
	}
	switch strings.ToLower(name) {
	case "lnc-ra-adaptive", "lncra-adaptive", "adaptive":
		res, _, err := sim.ReplayAdaptive(tr,
			core.Config{Capacity: capacity, K: k, Sink: core.MultiSink(sink, reg)},
			admission.Config{Window: window})
		if err != nil {
			return compareRow{}, err
		}
		return finish(compareRow{label: res.Policy, stats: res.Stats, classes: reg.Snapshot().Classes, adaptive: &res}), nil
	case "lnc-ra-derive", "lncra-derive", "derive":
		if !tr.HasPlans() {
			return compareRow{}, fmt.Errorf(
				"policy %s needs plan descriptors, but trace %q carries none: regenerate it with a descriptor-aware workload (e.g. 'watchman trace -benchmark drilldown') or replay a policy without derivation",
				name, tr.Name)
		}
		res, _, _, err := sim.ReplayDerived(tr,
			core.Config{Capacity: capacity, K: k, Policy: core.LNCRA, Sink: core.MultiSink(sink, reg)},
			derive.Config{})
		if err != nil {
			return compareRow{}, err
		}
		return finish(compareRow{label: res.Policy + "+derive", stats: res.Stats, classes: reg.Snapshot().Classes}), nil
	default:
		pk, err := parsePolicy(name)
		if err != nil {
			return compareRow{}, err
		}
		res, _, err := sim.ReplayWithRegistry(tr, core.Config{Capacity: capacity, K: k, Policy: pk, Sink: sink}, reg)
		if err != nil {
			return compareRow{}, err
		}
		return finish(compareRow{label: res.Policy, stats: res.Stats, classes: reg.Snapshot().Classes}), nil
	}
}
