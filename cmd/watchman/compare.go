package main

// The policy-comparison experiment harness: `watchman compare` replays one
// trace across a set of cache policies — including the shadow-tuned
// adaptive admitter — and emits a cost-savings-ratio table, the repo's
// first cross-policy, cross-workload evaluation surface.

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// defaultComparePolicies is the policy lineup compared by default: the
// paper's flagship against its adaptive extension and the two classic
// baselines.
const defaultComparePolicies = "lnc-ra,lnc-ra-adaptive,lru,lru-k"

// compareRow is one policy's replay outcome within a comparison.
type compareRow struct {
	label    string
	stats    core.Stats
	adaptive *sim.AdaptiveResult // nil for static policies
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	in := fs.String("i", "", "trace file (default: generate -benchmark in-process)")
	benchmark := fs.String("benchmark", "tpcd", "workload when generating in-process: tpcd, setquery or multiclass")
	queries := fs.Int("queries", 17000, "queries when generating in-process")
	seed := fs.Int64("seed", 1, "seed when generating in-process")
	scale := fs.Float64("scale", 0, "database scale when generating in-process (0 = paper default)")
	policies := fs.String("policies", defaultComparePolicies,
		"comma-separated policies to compare (lnc-ra-adaptive selects the shadow-tuned admitter)")
	k := fs.Int("k", 4, "reference-window size K")
	cachePct := fs.Float64("cache-pct", 1, "cache size as % of database size")
	cacheBytes := fs.Int64("cache-bytes", 0, "cache size in bytes (overrides -cache-pct)")
	window := fs.Int("window", admission.DefaultWindow, "adaptive tuner: references per tuning round")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tr *trace.Trace
	var err error
	if *in != "" {
		tr, err = loadTrace(*in)
	} else {
		tr, err = generateTrace(*benchmark, *queries, *seed, *scale)
	}
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	capacity := *cacheBytes
	if capacity <= 0 {
		capacity = sim.CacheBytesForFraction(tr, *cachePct)
	}

	var rows []compareRow
	for _, name := range strings.Split(*policies, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		row, err := compareOne(tr, name, capacity, *k, *window)
		if err != nil {
			return fmt.Errorf("compare: %w", err)
		}
		rows = append(rows, row)
	}

	t := metrics.NewTable(
		fmt.Sprintf("policy comparison on %s, cache %s, K=%d", tr.Name, metrics.Bytes(capacity), *k),
		"policy", "cost savings", "hit ratio", "admissions", "rejections", "evictions")
	for _, r := range rows {
		t.AddRow(r.label,
			metrics.Ratio(r.stats.CostSavingsRatio()),
			metrics.Ratio(r.stats.HitRatio()),
			fmt.Sprint(r.stats.Admissions),
			fmt.Sprint(r.stats.Rejections),
			fmt.Sprint(r.stats.Evictions))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	for _, r := range rows {
		if r.adaptive != nil {
			fmt.Printf("\nadaptive admitter: final θ=%g after %d tuning rounds (%d parameter switches), window %d refs\n",
				r.adaptive.FinalThreshold, r.adaptive.Rounds, r.adaptive.Switches, *window)
		}
	}
	return nil
}

// compareOne replays the trace under one named policy. The name
// "lnc-ra-adaptive" (or "adaptive") selects the shadow-tuned admitter;
// everything else resolves through parsePolicy.
func compareOne(tr *trace.Trace, name string, capacity int64, k, window int) (compareRow, error) {
	switch strings.ToLower(name) {
	case "lnc-ra-adaptive", "lncra-adaptive", "adaptive":
		res, _, err := sim.ReplayAdaptive(tr,
			core.Config{Capacity: capacity, K: k},
			admission.Config{Window: window})
		if err != nil {
			return compareRow{}, err
		}
		return compareRow{label: res.Policy, stats: res.Stats, adaptive: &res}, nil
	default:
		pk, err := parsePolicy(name)
		if err != nil {
			return compareRow{}, err
		}
		res, err := sim.ReplaySetup(tr, sim.Setup{Policy: pk, K: k}, capacity)
		if err != nil {
			return compareRow{}, err
		}
		return compareRow{label: res.Policy, stats: res.Stats}, nil
	}
}
