package main

import (
	"flag"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/workload"
)

// writeTestTrace generates a small TPC-D trace file for loadgen tests.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := cmdTrace([]string{"-benchmark", "tpcd", "-queries", "400", "-seed", "3", "-scale", "0.005", "-o", path}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestShardedFlagsBuild(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	sf := addShardedFlags(fs)
	if err := fs.Parse([]string{"-policy", "lnc-ra", "-shards", "8", "-k", "2", "-evictor", "heap"}); err != nil {
		t.Fatal(err)
	}
	sc, err := sf.build(1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumShards() != 8 {
		t.Errorf("shards = %d", sc.NumShards())
	}

	fs = flag.NewFlagSet("x", flag.ContinueOnError)
	sf = addShardedFlags(fs)
	if err := fs.Parse([]string{"-evictor", "bogus"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.build(1<<20, nil); err == nil {
		t.Error("bogus evictor must error")
	}
	fs = flag.NewFlagSet("x", flag.ContinueOnError)
	sf = addShardedFlags(fs)
	if err := fs.Parse([]string{"-policy", "bogus"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.build(1<<20, nil); err == nil {
		t.Error("bogus policy must error")
	}
}

func TestLoadgenInProcess(t *testing.T) {
	path := writeTestTrace(t)
	if err := cmdLoadgen([]string{"-i", path, "-concurrency", "8", "-shards", "4", "-compare-serial"}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadgenAgainstLiveServer(t *testing.T) {
	path := writeTestTrace(t)
	sc, err := shard.New(shard.Config{
		Shards: 4,
		Cache:  core.Config{Capacity: 1 << 20, K: 4, Policy: core.LNCRA},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(sc).Handler())
	defer ts.Close()

	if err := cmdLoadgen([]string{"-i", path, "-concurrency", "8", "-addr", ts.URL}); err != nil {
		t.Fatal(err)
	}
	tr, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.References != int64(tr.Len()) {
		t.Errorf("server saw %d references, want %d", st.References, tr.Len())
	}
	if err := sc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadgenFlagsValidation(t *testing.T) {
	if err := cmdLoadgen([]string{"-concurrency", "4"}); err == nil {
		t.Error("missing -i must error")
	}
	path := writeTestTrace(t)
	if err := cmdLoadgen([]string{"-i", path, "-concurrency", "0"}); err == nil {
		t.Error("zero concurrency must error")
	}
	if err := cmdLoadgen([]string{"-i", path, "-addr", "http://localhost:1", "-compare-serial"}); err == nil {
		t.Error("-compare-serial with -addr must error")
	}
}

// TestReplayConcurrentCoversTrace checks the shared-cursor replay visits
// every record exactly once.
func TestReplayConcurrentCoversTrace(t *testing.T) {
	tr, err := func() (*trace.Trace, error) {
		_, tr, err := workload.StandardTPCD(0.005, workload.Config{Queries: 300, Seed: 7})
		return tr, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int32, tr.Len())
	_, _, _, err = replayConcurrent(tr, 16, func(rec *trace.Record) (bool, error) {
		atomic.AddInt32(&seen[rec.Seq], 1)
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("record %d replayed %d times", i, n)
		}
	}
}
