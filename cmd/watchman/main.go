// Command watchman is the CLI for the WATCHMAN reproduction. It generates
// benchmark traces, replays them against cache policies, and regenerates
// the tables and figures of the paper's evaluation.
//
// Usage:
//
//	watchman trace -benchmark tpcd -queries 17000 -o tpcd.trace
//	watchman inspect -i tpcd.trace
//	watchman run -i tpcd.trace -policy lnc-ra -k 4 -cache-pct 1
//	watchman experiments -figure all
//	watchman compare -benchmark tpcd -cache-pct 1
//	watchman serve -addr :8080 -policy lnc-ra -shards 16 -cache-bytes 67108864
//	watchman loadgen -i tpcd.trace -concurrency 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "watchman: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "watchman:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `watchman — data warehouse intelligent cache manager (VLDB 1996 reproduction)

commands:
  trace        generate a benchmark workload trace file
  inspect      print statistics of a trace file
  run          replay a trace against a cache configuration
  experiments  regenerate the paper's tables and figures
  compare      replay one trace across policies (incl. adaptive admission)
  serve        run the sharded cache as an HTTP daemon
  loadgen      replay a trace concurrently against a server or in-process cache

run 'watchman <command> -h' for flags.
`)
}

// generateTrace builds a trace from CLI parameters.
func generateTrace(benchmark string, queries int, seed int64, scale float64) (*trace.Trace, error) {
	cfg := workload.Config{Queries: queries, Seed: seed}
	switch benchmark {
	case "tpcd":
		_, tr, err := workload.StandardTPCD(scale, cfg)
		return tr, err
	case "setquery":
		_, tr, err := workload.StandardSetQuery(scale, cfg)
		return tr, err
	case "multiclass":
		_, tr, err := workload.GenerateMulticlass(scale, workload.MulticlassConfig{Config: cfg})
		return tr, err
	case "drilldown":
		_, tr, err := workload.StandardDrilldown(scale, cfg)
		return tr, err
	default:
		return nil, fmt.Errorf("unknown benchmark %q (want tpcd, setquery, multiclass or drilldown)", benchmark)
	}
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	benchmark := fs.String("benchmark", "tpcd", "workload: tpcd, setquery, multiclass or drilldown")
	queries := fs.Int("queries", 17000, "number of queries")
	seed := fs.Int64("seed", 1, "random seed")
	scale := fs.Float64("scale", 0, "database scale (0 = paper default)")
	out := fs.String("o", "", "output file (required)")
	format := fs.String("format", "bin", "output format: bin or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("trace: -o is required")
	}
	tr, err := generateTrace(*benchmark, *queries, *seed, *scale)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "bin":
		err = trace.WriteBinary(f, tr)
	case "csv":
		err = trace.WriteCSV(f, tr)
	default:
		return fmt.Errorf("trace: unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st := trace.ComputeStats(tr)
	fmt.Printf("wrote %s: %s\n", *out, st)
	return nil
}

// loadTrace reads a trace file, trying the binary codec first.
func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err == nil {
		return tr, nil
	}
	if _, serr := f.Seek(0, 0); serr != nil {
		return nil, serr
	}
	tr, cerr := trace.ReadCSV(f)
	if cerr != nil {
		return nil, fmt.Errorf("not a binary trace (%v) nor CSV (%v)", err, cerr)
	}
	return tr, nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("i", "", "trace file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect: -i is required")
	}
	tr, err := loadTrace(*in)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	st := trace.ComputeStats(tr)
	t := metrics.NewTable(fmt.Sprintf("trace %s (database %s)", tr.Name, metrics.Bytes(tr.DatabaseBytes)),
		"metric", "value")
	t.AddRow("queries", fmt.Sprint(st.Queries))
	t.AddRow("unique queries", fmt.Sprint(st.Unique))
	t.AddRow("total cost (block reads)", fmt.Sprintf("%.0f", st.TotalCost))
	t.AddRow("working set", metrics.Bytes(st.UniqueBytes))
	t.AddRow("duration (s)", fmt.Sprintf("%.0f", st.Duration))
	t.AddRow("max hit ratio (inf cache)", metrics.Ratio(st.MaxHitRatio))
	t.AddRow("max cost savings (inf cache)", metrics.Ratio(st.MaxCostSavings))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	pt := metrics.NewTable("per-template submissions", "template", "count")
	for _, name := range st.TemplateNames() {
		pt.AddRow(name, fmt.Sprint(st.Templates[name]))
	}
	return pt.Render(os.Stdout)
}

// parsePolicy maps a CLI name to a policy kind.
func parsePolicy(name string) (core.PolicyKind, error) {
	switch strings.ToLower(name) {
	case "lru":
		return core.LRU, nil
	case "lru-k", "lruk":
		return core.LRUK, nil
	case "lfu":
		return core.LFU, nil
	case "lcs":
		return core.LCS, nil
	case "lnc-r", "lncr":
		return core.LNCR, nil
	case "lnc-ra", "lncra":
		return core.LNCRA, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want lru, lru-k, lfu, lcs, lnc-r or lnc-ra)", name)
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("i", "", "trace file (generate with 'watchman trace')")
	benchmark := fs.String("benchmark", "", "generate the workload in-process instead of -i")
	queries := fs.Int("queries", 17000, "queries when generating in-process")
	seed := fs.Int64("seed", 1, "seed when generating in-process")
	scale := fs.Float64("scale", 0, "database scale when generating in-process")
	policy := fs.String("policy", "lnc-ra", "cache policy")
	k := fs.Int("k", 4, "reference-window size K")
	cachePct := fs.Float64("cache-pct", 1, "cache size as % of database size")
	cacheBytes := fs.Int64("cache-bytes", 0, "cache size in bytes (overrides -cache-pct)")
	evictor := fs.String("evictor", "scan", "victim search: scan or heap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tr *trace.Trace
	var err error
	switch {
	case *in != "":
		tr, err = loadTrace(*in)
	case *benchmark != "":
		tr, err = generateTrace(*benchmark, *queries, *seed, *scale)
	default:
		return fmt.Errorf("run: need -i or -benchmark")
	}
	if err != nil {
		return err
	}
	pk, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	ek := core.ScanEvictor
	if *evictor == "heap" {
		ek = core.HeapEvictor
	} else if *evictor != "scan" {
		return fmt.Errorf("run: unknown evictor %q", *evictor)
	}
	capacity := *cacheBytes
	if capacity <= 0 {
		capacity = sim.CacheBytesForFraction(tr, *cachePct)
	}
	res, cache, err := sim.Replay(tr, core.Config{
		Capacity: capacity,
		K:        *k,
		Policy:   pk,
		Evictor:  ek,
	})
	if err != nil {
		return err
	}
	st := res.Stats
	t := metrics.NewTable(fmt.Sprintf("%s on %s, cache %s", res.Policy, tr.Name, metrics.Bytes(capacity)),
		"metric", "value")
	t.AddRow("cost savings ratio", metrics.Ratio(res.CSR()))
	t.AddRow("hit ratio", metrics.Ratio(res.HR()))
	t.AddRow("avg fragmentation", metrics.Pct(st.AvgFragmentation()))
	t.AddRow("references", fmt.Sprint(st.References))
	t.AddRow("hits", fmt.Sprint(st.Hits))
	t.AddRow("admissions", fmt.Sprint(st.Admissions))
	t.AddRow("rejections", fmt.Sprint(st.Rejections))
	t.AddRow("evictions", fmt.Sprint(st.Evictions))
	t.AddRow("resident sets at end", fmt.Sprint(cache.Resident()))
	t.AddRow("retained records at end", fmt.Sprint(cache.Retained()))
	return t.Render(os.Stdout)
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	figure := fs.String("figure", "all", "which artifact: 2,3,4,5,6,7,optimality,retained,multiclass,baselines or all")
	queries := fs.Int("queries", 17000, "trace length")
	bufQueries := fs.Int("buffer-queries", 0, "Figure 7 trace length (0 = -queries)")
	seed := fs.Int64("seed", 42, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite := experiments.NewSuite(experiments.Options{
		Queries:       *queries,
		BufferQueries: *bufQueries,
		Seed:          *seed,
	})
	render := func(ts []*metrics.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range ts {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	one := func(t *metrics.Table, err error) error {
		if err != nil {
			return err
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}
	want := func(name string) bool { return *figure == "all" || *figure == name }

	if want("2") {
		if err := one(suite.Figure2()); err != nil {
			return err
		}
	}
	if want("3") {
		if err := render(suite.Figure3()); err != nil {
			return err
		}
	}
	if want("4") {
		if err := render(suite.Figure4()); err != nil {
			return err
		}
	}
	if want("5") {
		if err := render(suite.Figure5()); err != nil {
			return err
		}
	}
	if want("6") {
		if err := render(suite.Figure6()); err != nil {
			return err
		}
	}
	if want("7") {
		if err := one(suite.Figure7()); err != nil {
			return err
		}
	}
	if want("optimality") {
		if err := one(suite.Optimality(0, 0)); err != nil {
			return err
		}
	}
	if want("retained") {
		if err := one(suite.AblationRetained()); err != nil {
			return err
		}
	}
	if want("multiclass") {
		if err := one(suite.Multiclass()); err != nil {
			return err
		}
	}
	if want("baselines") {
		if err := one(suite.Baselines()); err != nil {
			return err
		}
	}
	return nil
}
