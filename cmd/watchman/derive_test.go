package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestCmdCompareDrilldownDerive runs the derive-vs-exact comparison on
// the drilldown workload and checks the derived column reports real
// derivations for the derive row and zero for the exact row.
func TestCmdCompareDrilldownDerive(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdCompare([]string{
			"-benchmark", "drilldown", "-queries", "2500", "-seed", "7",
			"-policies", "lnc-ra,lnc-ra-derive", "-cache-pct", "1",
		})
	})
	if !strings.Contains(out, "derived") {
		t.Fatalf("compare output missing the derived column:\n%s", out)
	}
	if !strings.Contains(out, "LNC-RA+derive") {
		t.Fatalf("compare output missing the derive row:\n%s", out)
	}
}

// TestCmdCompareDeriveNeedsPlans pins the failure mode the issue calls
// out: requesting derivation on a trace without plan descriptors must be
// a clear error, not a silent zero row.
func TestCmdCompareDeriveNeedsPlans(t *testing.T) {
	// A hand-built v1 trace: no record carries a descriptor.
	tr := &trace.Trace{Name: "planfree", DatabaseBytes: 1 << 20, Records: []trace.Record{
		{Seq: 0, Time: 1, QueryID: "q1", Template: "t", Size: 100, Cost: 10},
		{Seq: 1, Time: 2, QueryID: "q1", Template: "t", Size: 100, Cost: 10},
	}}
	path := filepath.Join(t.TempDir(), "planfree.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	err = cmdCompare([]string{"-i", path, "-policies", "lnc-ra-derive", "-cache-pct", "1"})
	if err == nil {
		t.Fatal("derive on a plan-free trace must error")
	}
	if !strings.Contains(err.Error(), "plan descriptors") {
		t.Fatalf("error %q should explain the missing plan descriptors", err)
	}
}
