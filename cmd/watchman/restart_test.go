package main

import (
	"strings"
	"testing"
)

// TestCmdCompareRestart smokes the warm-vs-cold restart harness end to
// end through the CLI.
func TestCmdCompareRestart(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdCompare([]string{
			"-benchmark", "tpcd", "-queries", "2000", "-seed", "1",
			"-cache-pct", "1", "-restart",
		})
	})
	for _, want := range []string{
		"warm-vs-cold restart",
		"uninterrupted",
		"warm restart (snapshot+restore)",
		"cold restart",
		"snapshot:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("restart output missing %q:\n%s", want, out)
		}
	}
}

// TestServeSnapshotFlagValidation: -snapshot-interval is meaningless
// without -snapshot-path and must be rejected, matching the CLI's
// strictness elsewhere.
func TestServeSnapshotFlagValidation(t *testing.T) {
	err := cmdServe([]string{"-snapshot-interval", "5s", "-addr", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "snapshot-interval") {
		t.Fatalf("err = %v, want snapshot-interval rejection", err)
	}
}
