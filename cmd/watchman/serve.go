package main

// The serving side of the CLI: `watchman serve` runs the sharded cache as
// an HTTP daemon, `watchman loadgen` replays a trace against either a live
// daemon or an in-process sharded cache at a configurable concurrency and
// reports throughput and the paper's metrics.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/whatif"
)

// shardedFlags is the flag subset shared by serve and loadgen that shapes
// the sharded cache.
type shardedFlags struct {
	policy         *string
	shards         *int
	k              *int
	evictor        *string
	buffered       *bool
	promoteBuffer  *int
	getsPerPromote *int
}

func addShardedFlags(fs *flag.FlagSet) shardedFlags {
	return shardedFlags{
		policy:         fs.String("policy", "lnc-ra", "cache policy"),
		shards:         fs.Int("shards", 16, "number of cache shards (power of two)"),
		k:              fs.Int("k", 4, "reference-window size K"),
		evictor:        fs.String("evictor", "scan", "victim search: scan or heap"),
		buffered:       fs.Bool("buffered", false, "serve hits from a lock-free index and apply recency/λ bookkeeping asynchronously (see ARCHITECTURE.md for the consistency trade)"),
		promoteBuffer:  fs.Int("promote-buffer", 0, "buffered mode: per-shard promotion queue depth (0 = default; needs -buffered)"),
		getsPerPromote: fs.Int("gets-per-promote", 1, "buffered mode: apply bookkeeping for 1 in N hits per entry (1 = every hit; needs -buffered)"),
	}
}

// check rejects buffered-mode tuning flags when -buffered is off, rather
// than silently ignoring them (same strictness as loadgen's -addr).
func (f shardedFlags) check(fs *flag.FlagSet) error {
	if *f.buffered {
		return nil
	}
	var ignored []string
	fs.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "promote-buffer", "gets-per-promote":
			ignored = append(ignored, "-"+fl.Name+" (needs -buffered)")
		}
	})
	if len(ignored) > 0 {
		return fmt.Errorf("%s", strings.Join(ignored, ", "))
	}
	return nil
}

// coreConfig resolves the flags into a per-cache configuration.
func (f shardedFlags) coreConfig(capacity int64) (core.Config, error) {
	pk, err := parsePolicy(*f.policy)
	if err != nil {
		return core.Config{}, err
	}
	ek := core.ScanEvictor
	if *f.evictor == "heap" {
		ek = core.HeapEvictor
	} else if *f.evictor != "scan" {
		return core.Config{}, fmt.Errorf("unknown evictor %q", *f.evictor)
	}
	return core.Config{
		Capacity: capacity,
		K:        *f.k,
		Policy:   pk,
		Evictor:  ek,
	}, nil
}

// build constructs the sharded cache from the parsed flags. rec may be
// nil (no flight recorder attached).
func (f shardedFlags) build(capacity int64, rec *flight.Recorder) (*shard.Sharded, error) {
	cfg, err := f.coreConfig(capacity)
	if err != nil {
		return nil, err
	}
	return shard.New(shard.Config{
		Shards:         *f.shards,
		Cache:          cfg,
		Recorder:       rec,
		Buffered:       *f.buffered,
		PromoteBuffer:  *f.promoteBuffer,
		GetsPerPromote: *f.getsPerPromote,
	})
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "total cache capacity in bytes")
	adaptive := fs.Bool("adaptive", false, "enable the shadow-tuned adaptive admitter (forces -policy lnc-ra)")
	deriveOn := fs.Bool("derive", false, "enable semantic derivation: answer misses from cached sets whose plan descriptors subsume the request")
	tuneWindow := fs.Int("tune-window", admission.DefaultWindow, "adaptive tuner: references per tuning round")
	telemetryOn := fs.Bool("telemetry", true, "attach the telemetry registry (GET /metrics, per-class /stats sections)")
	snapshotPath := fs.String("snapshot-path", "", "snapshot file: restore cache state from it on boot (warm restart) and persist to it (POST /v1/snapshot, periodic with -snapshot-interval, final flush on graceful shutdown)")
	snapshotInterval := fs.Duration("snapshot-interval", 0, "background snapshot period (0 = on-demand and shutdown only; needs -snapshot-path)")
	debugOn := fs.Bool("debug", false, "attach the flight recorder (GET /debug/requests, GET /v1/explain/{id}, stage-latency histograms) and mount pprof under /debug/pprof")
	flightSample := fs.Int("flight-sample", flight.DefaultSampleEvery, "flight recorder: capture one span in N (1 = every span; needs -debug)")
	flightSlow := fs.Duration("flight-slow", flight.DefaultSlowThreshold, "flight recorder: always capture spans slower than this (needs -debug)")
	whatifOn := fs.Bool("whatif", false, "attach the ghost-cache what-if matrix (GET /v1/whatif, watchman_whatif_* metrics): live counterfactual CSR across a capacity ladder × policy grid")
	whatifSample := fs.Int("whatif-sample", whatif.DefaultSampleRate, "what-if matrix: replay 1 in R references into ghosts scaled by 1/R (needs -whatif)")
	sf := addShardedFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*adaptive || *snapshotPath == "" || !*debugOn || !*whatifOn {
		// Reject rather than silently ignore flags that have no effect in
		// this configuration (same strictness as loadgen's -addr).
		var ignored []string
		fs.Visit(func(f *flag.Flag) {
			switch {
			case f.Name == "tune-window" && !*adaptive:
				ignored = append(ignored, "-"+f.Name+" (needs -adaptive)")
			case f.Name == "snapshot-interval" && *snapshotPath == "":
				ignored = append(ignored, "-"+f.Name+" (needs -snapshot-path)")
			case (f.Name == "flight-sample" || f.Name == "flight-slow") && !*debugOn:
				ignored = append(ignored, "-"+f.Name+" (needs -debug)")
			case f.Name == "whatif-sample" && !*whatifOn:
				ignored = append(ignored, "-"+f.Name+" (needs -whatif)")
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("serve: %s", strings.Join(ignored, ", "))
		}
	}
	if err := sf.check(fs); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if *flightSample < 1 {
		return fmt.Errorf("serve: -flight-sample must be at least 1, got %d", *flightSample)
	}
	if *snapshotInterval < 0 {
		return fmt.Errorf("serve: negative -snapshot-interval %v", *snapshotInterval)
	}
	cfg, err := sf.coreConfig(*cacheBytes)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	var tuner *admission.Tuner
	if *adaptive {
		cfg.Policy = core.LNCRA
		tuner, err = admission.New(admission.Config{
			Capacity: *cacheBytes,
			K:        cfg.K,
			Evictor:  cfg.Evictor,
			Window:   *tuneWindow,
		})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	var reg *telemetry.Registry
	if *telemetryOn {
		reg = telemetry.NewRegistry()
	}
	var deriver core.Deriver
	if *deriveOn {
		// Server-side derivation is descriptor-driven: clients report
		// sizes and costs, so no engine is needed for estimation, and
		// payload rewriting happens only for in-process engine results.
		deriver = derive.New(derive.Config{})
	}
	var rec *flight.Recorder
	if *debugOn {
		rec = flight.New(flight.Config{
			SampleEvery:   *flightSample,
			SlowThreshold: *flightSlow,
			Registry:      reg,
		})
	}
	var ghosts *whatif.Matrix
	if *whatifOn {
		if *whatifSample < 1 {
			return fmt.Errorf("serve: -whatif-sample must be at least 1, got %d", *whatifSample)
		}
		ghosts, err = whatif.New(whatif.Config{Base: cfg, SampleRate: *whatifSample})
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	sc, err := shard.New(shard.Config{
		Shards:         *sf.shards,
		Cache:          cfg,
		Tuner:          tuner,
		Registry:       reg,
		Deriver:        deriver,
		Recorder:       rec,
		WhatIf:         ghosts,
		Buffered:       *sf.buffered,
		PromoteBuffer:  *sf.promoteBuffer,
		GetsPerPromote: *sf.getsPerPromote,
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	var snapshotter *shard.Snapshotter
	hsrv := server.New(sc)
	if *debugOn {
		hsrv.EnableProfiling()
	}
	if *snapshotPath != "" {
		// Warm restart: restore before the listener exists, so the first
		// request already sees the recovered residency and θ.
		rep, restored, err := sc.RestoreFile(*snapshotPath)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if restored {
			msg := fmt.Sprintf("watchman: restored %d resident + %d retained sets from %s",
				rep.Resident, rep.Retained, *snapshotPath)
			if rep.ThetaRestored {
				msg += fmt.Sprintf(" (admission θ=%g)", rep.Theta)
			}
			if rep.DemotedResident > 0 || rep.Dropped > 0 {
				msg += fmt.Sprintf("; %d demoted, %d dropped (capacity/policy changed)",
					rep.DemotedResident, rep.Dropped)
			}
			fmt.Fprintln(os.Stderr, msg)
		} else {
			fmt.Fprintf(os.Stderr, "watchman: no snapshot at %s, starting cold\n", *snapshotPath)
		}
		snapshotter = sc.NewSnapshotter(*snapshotPath, *snapshotInterval)
		hsrv.SetSnapshotter(snapshotter)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: hsrv.Handler(),
		// Bound slow clients: without these, a stalled sender pins a
		// goroutine and file descriptor forever (slowloris).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	policyDesc := cfg.Policy.String()
	if tuner != nil {
		policyDesc += " adaptive"
	}
	if *sf.buffered {
		policyDesc += " buffered"
	}
	if deriver != nil {
		policyDesc += " +derive"
	}
	if reg != nil {
		policyDesc += ", telemetry on"
	}
	if rec != nil {
		policyDesc += fmt.Sprintf(", debug on (1/%d spans)", *flightSample)
	}
	if ghosts != nil {
		policyDesc += fmt.Sprintf(", what-if on (%d ghosts, 1/%d refs)", ghosts.CellCount(), ghosts.SampleRate())
	}
	if snapshotter != nil {
		policyDesc += ", snapshots " + *snapshotPath
	}
	fmt.Fprintf(os.Stderr, "watchman: serving %s cache (%d shards, %s) on %s\n",
		policyDesc, sc.NumShards(), metrics.Bytes(*cacheBytes), *addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fmt.Fprintln(os.Stderr, "watchman: shutting down")
	err = srv.Shutdown(shutCtx)
	// Flush the buffered hit applications before the final snapshot: once
	// the listener has drained, no new references arrive, so Close leaves
	// every deferred promotion applied and the export below captures the
	// same state a fully quiesced cache would. No-op when not -buffered.
	sc.Close()
	if snapshotter != nil {
		// Final flush after the listener drains: everything learned since
		// the last periodic snapshot survives the SIGTERM.
		info, serr := snapshotter.Close()
		if serr != nil {
			if err == nil {
				err = fmt.Errorf("serve: final snapshot: %w", serr)
			}
			fmt.Fprintf(os.Stderr, "watchman: final snapshot failed: %v\n", serr)
		} else {
			fmt.Fprintf(os.Stderr, "watchman: final snapshot: %d resident sets, %s (%d bytes, %v, max lock pause %v)\n",
				info.Resident, info.Path, info.Bytes,
				info.Elapsed.Round(time.Millisecond), info.MaxLockPause.Round(time.Microsecond))
		}
	}
	return err
}

// referencer replays one trace record and reports whether it hit.
type referencer func(rec *trace.Record) (bool, error)

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	in := fs.String("i", "", "trace file (required; generate with 'watchman trace')")
	concurrency := fs.Int("concurrency", 64, "number of concurrent replay workers")
	addr := fs.String("addr", "", "replay against a live server at this base URL (e.g. http://localhost:8080); empty = in-process cache")
	cachePct := fs.Float64("cache-pct", 1, "in-process cache size as % of database size")
	cacheBytes := fs.Int64("cache-bytes", 0, "in-process cache size in bytes (overrides -cache-pct)")
	compareSerial := fs.Bool("compare-serial", false, "also replay serially through one core cache and report the CSR delta")
	slowlog := fs.Int("slowlog", 0, "after the replay, print the N slowest recorded spans (in-process: attaches a flight recorder; with -addr: fetches /debug/requests?slow=1 from the server)")
	jsonOut := fs.Bool("json", false, "print the final run summary as a single JSON line instead of the table")
	sf := addShardedFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("loadgen: -i is required")
	}
	if *concurrency < 1 {
		return fmt.Errorf("loadgen: -concurrency must be at least 1")
	}
	if *slowlog < 0 {
		return fmt.Errorf("loadgen: negative -slowlog %d", *slowlog)
	}
	if *jsonOut && *slowlog > 0 {
		return fmt.Errorf("loadgen: -slowlog prints a table and would corrupt the -json line; drop one")
	}
	if err := sf.check(fs); err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	if *addr != "" {
		if *compareSerial {
			return fmt.Errorf("loadgen: -compare-serial needs the in-process cache; drop -addr")
		}
		// The cache-shaping flags configure the in-process cache only; a
		// live server was shaped at its own startup. Reject rather than
		// silently attribute the results to a configuration never in use.
		var ignored []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "policy", "shards", "k", "evictor", "cache-pct", "cache-bytes",
				"buffered", "promote-buffer", "gets-per-promote":
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("loadgen: %s configure the in-process cache and have no effect with -addr (the server was configured at startup)",
				strings.Join(ignored, ", "))
		}
	}
	tr, err := loadTrace(*in)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}

	var ref referencer
	var sc *shard.Sharded
	var rec *flight.Recorder
	var client *http.Client
	target := "in-process"
	capacity := *cacheBytes
	if *addr != "" {
		base := strings.TrimRight(*addr, "/")
		target = base
		client = &http.Client{
			Timeout: 30 * time.Second,
			// The default transport keeps only 2 idle conns per host; at
			// -concurrency 64 that measures connection churn, not the
			// server. Keep one warm connection per worker.
			Transport: &http.Transport{
				MaxIdleConns:        *concurrency,
				MaxIdleConnsPerHost: *concurrency,
			},
		}
		ref = func(rec *trace.Record) (bool, error) {
			return postReference(client, base, rec)
		}
	} else {
		if capacity <= 0 {
			capacity = sim.CacheBytesForFraction(tr, *cachePct)
		}
		if *slowlog > 0 {
			// The user asked for the slow log, so capture every span: the
			// sampled default is for always-on production serving, not a
			// bounded measurement run.
			rec = flight.New(flight.Config{SampleEvery: 1})
		}
		sc, err = sf.build(capacity, rec)
		if err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
		ref = func(rec *trace.Record) (bool, error) {
			req := shard.Request{
				QueryID:   rec.QueryID,
				Time:      rec.Time,
				Class:     rec.Class,
				Size:      rec.Size,
				Cost:      rec.Cost,
				Relations: rec.Relations,
			}
			if rec.Plan != nil {
				req.Plan = rec.Plan
			}
			hit, _ := sc.Reference(req)
			return hit, nil
		}
	}

	hits, elapsed, lats, err := replayConcurrent(tr, *concurrency, ref)
	if err != nil {
		return err
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50, p99 := latPercentile(lats, 0.50), latPercentile(lats, 0.99)

	sum := loadgenSummary{
		Trace:        tr.Name,
		Target:       target,
		Concurrency:  *concurrency,
		Records:      tr.Len(),
		WallSeconds:  elapsed.Seconds(),
		RefsPerSec:   float64(tr.Len()) / elapsed.Seconds(),
		ClientHits:   hits,
		P50LatencyMS: durationMS(p50),
		P99LatencyMS: durationMS(p99),
	}
	t := metrics.NewTable(
		fmt.Sprintf("loadgen %s → %s, concurrency %d", tr.Name, target, *concurrency),
		"metric", "value")
	t.AddRow("records replayed", fmt.Sprint(tr.Len()))
	t.AddRow("wall time", elapsed.Round(time.Millisecond).String())
	t.AddRow("throughput (refs/s)", fmt.Sprintf("%.0f", sum.RefsPerSec))
	t.AddRow("client-observed hits", fmt.Sprint(hits))
	t.AddRow("p50 latency", p50.String())
	t.AddRow("p99 latency", p99.String())
	if sc != nil {
		// Buffered mode: apply every queued promotion before reading stats,
		// so the numbers below describe the whole replay (no-op otherwise).
		sc.Drain()
		st := sc.Stats()
		sum.CSR = ptr(st.CostSavingsRatio())
		sum.HitRatio = ptr(st.HitRatio())
		sum.Admissions = st.Admissions
		sum.Evictions = st.Evictions
		sum.Resident = sc.Resident()
		t.AddRow("cost savings ratio", metrics.Ratio(st.CostSavingsRatio()))
		t.AddRow("hit ratio", metrics.Ratio(st.HitRatio()))
		t.AddRow("admissions", fmt.Sprint(st.Admissions))
		t.AddRow("evictions", fmt.Sprint(st.Evictions))
		t.AddRow("resident sets", fmt.Sprint(sc.Resident()))
		if *sf.buffered {
			sum.BufferedHits = ptr(st.BufferedHits)
			sum.PromotesShed = ptr(st.PromotesSkipped)
			t.AddRow("buffered hits", fmt.Sprint(st.BufferedHits))
			t.AddRow("promotions shed", fmt.Sprint(st.PromotesSkipped))
		}
		if tn := sc.Tuner(); tn != nil {
			sum.Theta = ptr(tn.Threshold())
		}
		if *compareSerial {
			// Same configuration as each shard, minus the sharding.
			cfg, err := sf.coreConfig(capacity)
			if err != nil {
				return err
			}
			serial, _, err := sim.Replay(tr, cfg)
			if err != nil {
				return err
			}
			sum.SerialCSR = ptr(serial.CSR())
			sum.CSRDelta = ptr(st.CostSavingsRatio() - serial.CSR())
			t.AddRow("serial core CSR", metrics.Ratio(serial.CSR()))
			t.AddRow("CSR delta", fmt.Sprintf("%+.4f", st.CostSavingsRatio()-serial.CSR()))
		}
	} else {
		if csr, hr, err := fetchServerRatios(client, target); err == nil {
			sum.CSR, sum.HitRatio = ptr(csr), ptr(hr)
			t.AddRow("server cost savings ratio", metrics.Ratio(csr))
			t.AddRow("server hit ratio", metrics.Ratio(hr))
		} else {
			fmt.Fprintf(os.Stderr, "watchman: could not fetch server stats: %v\n", err)
		}
		if theta, ok, err := fetchServerTheta(client, target); err == nil && ok {
			sum.Theta = ptr(theta)
			t.AddRow("server admission θ", fmt.Sprintf("%g", theta))
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "watchman: could not fetch server admission state: %v\n", err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		return enc.Encode(sum)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if *slowlog > 0 {
		return printSlowlog(rec, client, target, *slowlog)
	}
	return nil
}

// loadgenSummary is the -json shape of the final run report: one line,
// mirroring the human-readable table. Pointer fields appear only when the
// run produced them (in-process vs remote, buffered, -compare-serial,
// adaptive admission).
type loadgenSummary struct {
	Trace        string   `json:"trace"`
	Target       string   `json:"target"`
	Concurrency  int      `json:"concurrency"`
	Records      int      `json:"records"`
	WallSeconds  float64  `json:"wall_seconds"`
	RefsPerSec   float64  `json:"refs_per_sec"`
	ClientHits   int64    `json:"client_hits"`
	P50LatencyMS float64  `json:"p50_latency_ms"`
	P99LatencyMS float64  `json:"p99_latency_ms"`
	CSR          *float64 `json:"csr,omitempty"`
	HitRatio     *float64 `json:"hit_ratio,omitempty"`
	Admissions   int64    `json:"admissions,omitempty"`
	Evictions    int64    `json:"evictions,omitempty"`
	Resident     int      `json:"resident,omitempty"`
	BufferedHits *int64   `json:"buffered_hits,omitempty"`
	PromotesShed *int64   `json:"promotes_shed,omitempty"`
	Theta        *float64 `json:"theta,omitempty"`
	SerialCSR    *float64 `json:"serial_csr,omitempty"`
	CSRDelta     *float64 `json:"csr_delta,omitempty"`
}

func ptr[T any](v T) *T { return &v }

// durationMS renders a duration as fractional milliseconds.
func durationMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// latPercentile reads the p-quantile (nearest-rank) off an ascending
// latency slice.
func latPercentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}

// fetchServerTheta reads the live server's adaptive admission threshold;
// ok is false when the server runs a static admission policy.
func fetchServerTheta(client *http.Client, base string) (theta float64, ok bool, err error) {
	resp, err := client.Get(base + "/v1/admission")
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, false, fmt.Errorf("server returned %s: %s", resp.Status, msg)
	}
	var st server.AdmissionResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, false, err
	}
	return st.Threshold, st.Enabled, nil
}

// printSlowlog renders the N slowest recorded spans after a replay. With
// an in-process recorder it reads the rings directly; against a live
// server it fetches /debug/requests?slow=1, and a 404 (no -debug on the
// server) degrades to a stderr note rather than failing the run.
func printSlowlog(rec *flight.Recorder, client *http.Client, base string, n int) error {
	var spans []server.SpanJSON
	coverage := "every span recorded"
	if rec != nil {
		for _, sp := range rec.Slowest(n) {
			spans = append(spans, server.NewSpanJSON(sp))
		}
	} else {
		coverage = "server-sampled; slow spans always captured"
		var err error
		if spans, err = fetchSlowlog(client, base, n); err != nil {
			fmt.Fprintf(os.Stderr, "watchman: slowlog: %v\n", err)
			return nil
		}
	}
	t := metrics.NewTable(
		fmt.Sprintf("slow log: %d slowest recorded spans (%s)", len(spans), coverage),
		"query id", "outcome", "total", "stages")
	for _, sp := range spans {
		t.AddRow(clipID(sp.ID, 64), sp.Outcome, time.Duration(sp.TotalNanos).String(), formatStages(sp.Stages))
	}
	fmt.Println()
	return t.Render(os.Stdout)
}

// formatStages renders a stage→nanoseconds map as "load=1.2ms lookup=3µs",
// largest stage first.
func formatStages(stages map[string]int64) string {
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if stages[names[i]] != stages[names[j]] {
			return stages[names[i]] > stages[names[j]]
		}
		return names[i] < names[j]
	})
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%s", name, time.Duration(stages[name])))
	}
	return strings.Join(parts, " ")
}

// fetchSlowlog pulls the slow log from a live server's flight recorder.
func fetchSlowlog(client *http.Client, base string, n int) ([]server.SpanJSON, error) {
	resp, err := client.Get(fmt.Sprintf("%s/debug/requests?slow=1&n=%d", base, n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("server has no flight recorder (restart it with -debug)")
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("server returned %s: %s", resp.Status, msg)
	}
	var out server.DebugRequestsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Spans, nil
}

// replayConcurrent streams the trace through ref from n workers pulling
// records off one shared cursor, preserving approximate global order. The
// returned latency slice holds one per-reference duration per replayed
// record (indexed by record position up to where the replay reached), for
// the percentile rows of the summary.
func replayConcurrent(tr *trace.Trace, n int, ref referencer) (hits int64, elapsed time.Duration, lats []time.Duration, err error) {
	var next, hitCount atomic.Int64
	// Pointer CAS keeps the stored type uniform: atomic.Value would panic
	// if two workers raced to store errors of different concrete types.
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	lats = make([]time.Duration, tr.Len())
	start := monotime()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(tr.Len()) || firstErr.Load() != nil {
					return
				}
				t0 := monotime()
				hit, err := ref(&tr.Records[i])
				lats[i] = since(t0)
				if err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				if hit {
					hitCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return 0, 0, nil, *e
	}
	return hitCount.Load(), since(start), lats, nil
}

// postReference sends one trace record to a live server's /v1/reference.
// The record's logical timestamp is deliberately NOT sent: the server may
// have been up for a while (or served other traffic), so its clock is
// ahead of the trace's zero-based seconds, and mixing the two would pin
// every replayed reference to one instant and corrupt the λ estimates.
// Omitting the time lets the server stamp arrival on its own clock.
func postReference(client *http.Client, base string, rec *trace.Record) (bool, error) {
	body, err := json.Marshal(server.ReferenceRequest{
		QueryID:   rec.QueryID,
		Class:     rec.Class,
		Size:      rec.Size,
		Cost:      rec.Cost,
		Relations: rec.Relations,
		Plan:      rec.Plan,
	})
	if err != nil {
		return false, err
	}
	resp, err := client.Post(base+"/v1/reference", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("server returned %s: %s", resp.Status, msg)
	}
	var out server.ReferenceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, err
	}
	return out.Hit, nil
}

// fetchServerRatios reads the live server's aggregated metrics, reusing
// the replay client so the call shares its timeout.
func fetchServerRatios(client *http.Client, base string) (csr, hr float64, err error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, 0, fmt.Errorf("server returned %s: %s", resp.Status, msg)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, err
	}
	return st.CostSavingsRatio, st.HitRatio, nil
}
