package main

// This file is the CLI's designated time-source file: the only place in
// cmd/watchman allowed to read the process clock. loadgen measures
// wall-clock latency percentiles and total run time here; everything the
// cache itself observes flows through the serving layer's injected time
// source, keeping replays deterministic. The timesource analyzer
// (cmd/watchmanlint) enforces that no other file in the package reads
// the clock.
//
//watchman:timesource

import "time"

// monotime returns the current clock reading, for later measurement with
// since.
func monotime() time.Time { return time.Now() }

// since returns the wall time elapsed from a monotime reading.
func since(t time.Time) time.Duration { return time.Since(t) }
