package main

import (
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		out = append(out, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", ferr, out)
	}
	return string(out)
}

func TestCmdCompareSmoke(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdCompare([]string{
			"-benchmark", "tpcd", "-queries", "2000", "-seed", "1",
			"-window", "500", "-cache-pct", "1",
		})
	})
	for _, want := range []string{"LNC-RA", "LNC-RA adaptive", "LRU", "LRU-K", "adaptive admitter: final θ="} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdCompareSubsetAndErrors(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdCompare([]string{
			"-benchmark", "setquery", "-queries", "1000",
			"-policies", "lru,lfu", "-cache-pct", "2",
		})
	})
	if strings.Contains(out, "adaptive") {
		t.Errorf("static-only comparison must not print adaptive tuner state:\n%s", out)
	}
	if err := cmdCompare([]string{"-benchmark", "tpcd", "-queries", "200", "-policies", "bogus"}); err == nil {
		t.Error("unknown policy must error")
	}
	if err := cmdCompare([]string{"-benchmark", "bogus"}); err == nil {
		t.Error("unknown benchmark must error")
	}
}
